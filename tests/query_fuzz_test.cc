// Randomized query-level fuzzing: generate random PrefSQL queries over the
// IMDB schema (random join subsets, random preferences, random aggregate
// functions and filters) and assert that every execution strategy produces
// the same answer as unoptimized Bottom-Up evaluation. This is the broadest
// correctness net in the suite — it routinely exercises operator
// combinations no hand-written test covers.

#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/imdb_gen.h"
#include "exec/runner.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace prefdb {
namespace {

using testing_util::ExpectSameRows;

class QueryFuzzTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static Session* session() {
    static Session* instance = [] {
      ImdbOptions options;
      options.scale = 0.0006;
      options.seed = 1234;
      auto catalog = GenerateImdb(options);
      EXPECT_TRUE(catalog.ok());
      return new Session(std::move(*catalog));
    }();
    return instance;
  }

  // --- Random query synthesis over the Fig. 1 schema -----------------------

  struct JoinStep {
    const char* table;
    const char* condition;  // Against the already-joined prefix.
  };

  static std::string RandomQuery(Rng* rng) {
    // The join lattice rooted at MOVIES.
    static constexpr JoinStep kSteps[] = {
        {"GENRES", "MOVIES.m_id = GENRES.m_id"},
        {"DIRECTORS", "MOVIES.d_id = DIRECTORS.d_id"},
        {"RATINGS", "MOVIES.m_id = RATINGS.m_id"},
    };
    std::string sql = "SELECT title, year FROM MOVIES ";
    bool has[3] = {false, false, false};
    int n_joins = static_cast<int>(rng->Uniform(0, 3));
    for (int j = 0; j < n_joins; ++j) {
      int pick = static_cast<int>(rng->Uniform(0, 2));
      if (has[pick]) continue;
      has[pick] = true;
      sql += StrFormat("JOIN %s ON %s ", kSteps[pick].table,
                       kSteps[pick].condition);
    }

    // Random hard selection.
    if (rng->Bernoulli(0.6)) {
      switch (rng->Uniform(0, 2)) {
        case 0:
          sql += StrFormat("WHERE year >= %lld ",
                           static_cast<long long>(rng->Uniform(1950, 2010)));
          break;
        case 1:
          sql += StrFormat("WHERE duration BETWEEN %lld AND %lld ",
                           static_cast<long long>(rng->Uniform(60, 100)),
                           static_cast<long long>(rng->Uniform(110, 250)));
          break;
        default:
          sql += StrFormat("WHERE MOVIES.d_id <= %lld ",
                           static_cast<long long>(rng->Uniform(1, 200)));
      }
    }

    // Random preferences drawn from a pool matching the joined relations.
    std::vector<std::string> pool = {
        StrFormat("(year >= %lld) SCORE recency(year, 2011) CONF 0.%lld",
                  static_cast<long long>(rng->Uniform(1980, 2010)),
                  static_cast<long long>(rng->Uniform(1, 9))),
        StrFormat("(duration BETWEEN 90 AND 150) SCORE around(duration, %lld) "
                  "CONF 0.5",
                  static_cast<long long>(rng->Uniform(100, 140))),
        StrFormat("(MOVIES.m_id <= %lld) SCORE 0.8 CONF 0.9",
                  static_cast<long long>(rng->Uniform(1, 900))),
        "(true) SCORE 1.0 CONF 0.7 EXISTS IN AWARDS ON MOVIES.m_id = m_id",
    };
    if (has[0]) {
      pool.push_back("(genre = 'Comedy') SCORE 1.0 CONF 0.8");
      pool.push_back("(genre = 'Drama') SCORE recency(year, 2011) CONF 0.6");
    }
    if (has[1]) {
      pool.push_back(StrFormat("(DIRECTORS.d_id <= %lld) SCORE 0.9 CONF 1.0",
                               static_cast<long long>(rng->Uniform(1, 100))));
    }
    if (has[2]) {
      pool.push_back("(votes > 100) SCORE rating_score(rating) CONF 0.8");
    }

    int n_prefs = static_cast<int>(rng->Uniform(1, 4));
    sql += "PREFERRING ";
    std::vector<bool> used(pool.size(), false);
    for (int p = 0; p < n_prefs; ++p) {
      size_t pick = static_cast<size_t>(
          rng->Uniform(0, static_cast<int64_t>(pool.size()) - 1));
      if (used[pick]) continue;
      used[pick] = true;
      if (p > 0) sql += ", ";
      sql += pool[pick];
    }

    // Random aggregate function.
    static constexpr const char* kAggs[] = {"wsum", "maxconf", "maxscore",
                                            "noisyor"};
    sql += StrFormat(" USING AGG %s", kAggs[rng->Uniform(0, 3)]);

    // Random filter chain.
    switch (rng->Uniform(0, 4)) {
      case 0:
        sql += " RANKED";
        break;
      case 1:
        sql += StrFormat(" TOP %lld BY %s",
                         static_cast<long long>(rng->Uniform(1, 40)),
                         rng->Bernoulli(0.5) ? "SCORE" : "CONF");
        break;
      case 2:
        sql += StrFormat(" WITH CONF >= 0.%lld RANKED",
                         static_cast<long long>(rng->Uniform(1, 9)));
        break;
      case 3:
        sql += StrFormat(" WITH MATCHES >= %lld RANKED",
                         static_cast<long long>(rng->Uniform(1, 3)));
        break;
      default:
        sql += " NOT DOMINATED";
    }
    return sql;
  }
};

TEST_P(QueryFuzzTest, StrategiesAgreeOnRandomQueries) {
  Rng rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    std::string sql = RandomQuery(&rng);

    QueryOptions reference;
    reference.strategy = StrategyKind::kBU;
    reference.optimize = false;
    auto expected = session()->Query(sql, reference);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString() << "\n" << sql;

    struct Config {
      StrategyKind kind;
      bool optimize;
    };
    const Config configs[] = {
        {StrategyKind::kBU, true},
        {StrategyKind::kGBU, false},
        {StrategyKind::kGBU, true},
        {StrategyKind::kFtP, false},
        {StrategyKind::kPlugInBasic, false},
        {StrategyKind::kPlugInCombined, false},
    };
    for (const Config& config : configs) {
      QueryOptions options;
      options.strategy = config.kind;
      options.optimize = config.optimize;
      auto actual = session()->Query(sql, options);
      ASSERT_TRUE(actual.ok())
          << StrategyKindName(config.kind) << ": "
          << actual.status().ToString() << "\n" << sql;
      ASSERT_EQ(actual->relation.schema(), expected->relation.schema()) << sql;
      ExpectSameRows(actual->relation, expected->relation, 1e-9);
      if (::testing::Test::HasFailure()) {
        FAIL() << "strategy " << StrategyKindName(config.kind)
               << (config.optimize ? "+opt" : "") << " diverged on:\n" << sql;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryFuzzTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

}  // namespace
}  // namespace prefdb

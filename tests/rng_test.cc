#include "common/rng.h"

#include <map>

#include "gtest/gtest.h"

namespace prefdb {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000000), b.Uniform(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Uniform(0, 1000000) == b.Uniform(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformRealWithinBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformReal(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ZipfRanksWithinBounds) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Zipf(100, 1.0);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
  }
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(5);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[rng.Zipf(50, 1.0)]++;
  // Rank 1 should be sampled far more often than rank 50.
  EXPECT_GT(counts[1], counts[50] * 5);
  // And more often than rank 2 (monotone head).
  EXPECT_GT(counts[1], counts[2]);
}

TEST(RngTest, ZipfHandlesConfigurationChange) {
  Rng rng(9);
  EXPECT_LE(rng.Zipf(10, 1.0), 10);
  EXPECT_LE(rng.Zipf(3, 0.5), 3);  // Rebuilds the cached CDF.
  EXPECT_LE(rng.Zipf(10, 1.0), 10);
  EXPECT_EQ(rng.Zipf(1, 1.0), 1);  // Degenerate single-rank case.
}

TEST(RngTest, GaussianRoughlyCentered) {
  Rng rng(13);
  double sum = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

}  // namespace
}  // namespace prefdb

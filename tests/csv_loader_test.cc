#include "storage/csv_loader.h"

#include "exec/runner.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace prefdb {
namespace {

using testing_util::D;
using testing_util::I;
using testing_util::S;

Schema BooksSchema() {
  return Schema({{"", "id", ValueType::kInt},
                 {"", "title", ValueType::kString},
                 {"", "price", ValueType::kDouble}});
}

TEST(CsvLoaderTest, LoadsTypedRows) {
  Catalog catalog;
  Status st = LoadCsvString(&catalog, "BOOKS", BooksSchema(),
                            "id,title,price\n"
                            "1,Dune,9.99\n"
                            "2,Hyperion,12.50\n",
                            {"id"});
  ASSERT_TRUE(st.ok()) << st.ToString();
  Table* table = *catalog.GetTable("BOOKS");
  ASSERT_EQ(table->NumRows(), 2u);
  EXPECT_EQ(table->relation().rows()[0][0], I(1));
  EXPECT_EQ(table->relation().rows()[0][1], S("Dune"));
  EXPECT_EQ(table->relation().rows()[1][2], D(12.50));
  EXPECT_EQ(table->primary_key(), std::vector<size_t>{0});
}

TEST(CsvLoaderTest, QuotedFieldsAndEscapes) {
  Catalog catalog;
  Status st = LoadCsvString(&catalog, "BOOKS", BooksSchema(),
                            "id,title,price\n"
                            "1,\"Dune, Messiah\",9.99\n"
                            "2,\"The \"\"Best\"\" Book\",1\n",
                            {"id"});
  ASSERT_TRUE(st.ok()) << st.ToString();
  Table* table = *catalog.GetTable("BOOKS");
  EXPECT_EQ(table->relation().rows()[0][1], S("Dune, Messiah"));
  EXPECT_EQ(table->relation().rows()[1][1], S("The \"Best\" Book"));
}

TEST(CsvLoaderTest, EmptyAndUnparseableFieldsBecomeNull) {
  Catalog catalog;
  Status st = LoadCsvString(&catalog, "BOOKS", BooksSchema(),
                            "id,title,price\n"
                            "1,Dune,\n"
                            "2,,abc\n",
                            {"id"});
  ASSERT_TRUE(st.ok()) << st.ToString();
  Table* table = *catalog.GetTable("BOOKS");
  EXPECT_TRUE(table->relation().rows()[0][2].is_null());
  EXPECT_TRUE(table->relation().rows()[1][1].is_null());
  EXPECT_TRUE(table->relation().rows()[1][2].is_null());
}

TEST(CsvLoaderTest, CrlfAndBlankLinesTolerated) {
  Catalog catalog;
  Status st = LoadCsvString(&catalog, "BOOKS", BooksSchema(),
                            "id,title,price\r\n"
                            "1,Dune,9.99\r\n"
                            "\n"
                            "2,Hyperion,1\r\n",
                            {"id"});
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ((*catalog.GetTable("BOOKS"))->NumRows(), 2u);
}

TEST(CsvLoaderTest, HeaderValidation) {
  Catalog catalog;
  EXPECT_FALSE(LoadCsvString(&catalog, "B", BooksSchema(), "", {"id"}).ok());
  EXPECT_FALSE(LoadCsvString(&catalog, "B", BooksSchema(),
                             "id,title\n1,Dune\n", {"id"})
                   .ok());
  EXPECT_FALSE(LoadCsvString(&catalog, "B", BooksSchema(),
                             "id,name,price\n1,Dune,1\n", {"id"})
                   .ok());
  // Case-insensitive header match is fine.
  EXPECT_TRUE(LoadCsvString(&catalog, "B", BooksSchema(),
                            "ID,Title,PRICE\n1,Dune,1\n", {"id"})
                  .ok());
}

TEST(CsvLoaderTest, MalformedRecordsRejected) {
  Catalog catalog;
  Status st = LoadCsvString(&catalog, "B", BooksSchema(),
                            "id,title,price\n1,\"unterminated,9.99\n", {"id"});
  EXPECT_FALSE(st.ok());
  st = LoadCsvString(&catalog, "B", BooksSchema(),
                     "id,title,price\n1,Dune\n", {"id"});
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 2"), std::string::npos);
}

TEST(CsvLoaderTest, FileRoundTrip) {
  Catalog catalog;
  ASSERT_TRUE(LoadCsvString(&catalog, "BOOKS", BooksSchema(),
                            "id,title,price\n"
                            "1,\"Dune, Messiah\",9.99\n"
                            "2,Hyperion,\n",
                            {"id"})
                  .ok());
  std::string csv = RelationToCsv((*catalog.GetTable("BOOKS"))->relation());
  Catalog catalog2;
  ASSERT_TRUE(
      LoadCsvString(&catalog2, "BOOKS", BooksSchema(), csv, {"id"}).ok());
  testing_util::ExpectSameRows((*catalog2.GetTable("BOOKS"))->relation(),
                               (*catalog.GetTable("BOOKS"))->relation());
}

TEST(CsvLoaderTest, MissingFileIsNotFound) {
  Catalog catalog;
  Status st = LoadCsvFile(&catalog, "B", BooksSchema(),
                          "/nonexistent/books.csv", {"id"});
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST(CsvLoaderTest, LoadedTablesAreQueryableWithPreferences) {
  Catalog catalog;
  ASSERT_TRUE(LoadCsvString(&catalog, "BOOKS", BooksSchema(),
                            "id,title,price\n"
                            "1,Dune,9.99\n"
                            "2,Hyperion,25.00\n"
                            "3,Neuromancer,7.50\n",
                            {"id"})
                  .ok());
  Session session(std::move(catalog));
  auto result = session.Query(
      "SELECT title, price FROM BOOKS "
      "PREFERRING cheap: (price <= 10) SCORE 1 - price / 20 CONF 0.9 "
      "TOP 2 BY SCORE");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->relation.NumRows(), 2u);
  EXPECT_EQ(result->relation.rows()[0][0], S("Neuromancer"));
  EXPECT_EQ(result->relation.rows()[1][0], S("Dune"));
}

}  // namespace
}  // namespace prefdb

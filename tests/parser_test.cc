#include "parser/parser.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace prefdb {
namespace {

using testing_util::MakeMovieCatalog;

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() : catalog_(MakeMovieCatalog()) {}

  ParsedQuery Parse(std::string_view sql) {
    auto parsed = ParseQuery(sql, catalog_);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << sql;
    return parsed.ok() ? std::move(*parsed) : ParsedQuery{};
  }

  // Asserts that `sql` fails to parse. Use ParseErrorStatus when the test
  // also inspects the error message; the Status return is [[nodiscard]],
  // so the pure-failure checks use this void wrapper instead.
  void ParseError(std::string_view sql) { (void)ParseErrorStatus(sql); }

  Status ParseErrorStatus(std::string_view sql) {
    auto parsed = ParseQuery(sql, catalog_);
    EXPECT_FALSE(parsed.ok()) << "expected parse failure for: " << sql;
    return parsed.ok() ? Status::OK() : parsed.status();
  }

  Catalog catalog_;
};

TEST_F(ParserTest, MinimalSelect) {
  ParsedQuery q = Parse("SELECT title FROM MOVIES");
  ASSERT_NE(q.plan, nullptr);
  EXPECT_EQ(q.plan->kind, PlanKind::kProject);
  EXPECT_EQ(q.plan->child().kind, PlanKind::kScan);
  EXPECT_EQ(q.output_columns, std::vector<std::string>{"title"});
  EXPECT_EQ(q.agg->name(), "wsum");  // Default aggregate.
  EXPECT_TRUE(q.filters.empty());
  EXPECT_TRUE(q.preferences.empty());
}

TEST_F(ParserTest, SelectStarHasNoProjection) {
  ParsedQuery q = Parse("SELECT * FROM MOVIES");
  EXPECT_EQ(q.plan->kind, PlanKind::kScan);
  EXPECT_TRUE(q.output_columns.empty());
}

TEST_F(ParserTest, JoinsBuildLeftDeepTree) {
  ParsedQuery q = Parse(
      "SELECT title FROM MOVIES "
      "JOIN GENRES ON MOVIES.m_id = GENRES.m_id "
      "JOIN DIRECTORS ON MOVIES.d_id = DIRECTORS.d_id");
  const PlanNode* join = &q.plan->child();
  ASSERT_EQ(join->kind, PlanKind::kJoin);
  EXPECT_EQ(join->child(0).kind, PlanKind::kJoin);
  EXPECT_EQ(join->child(1).kind, PlanKind::kScan);
  EXPECT_EQ(join->child(1).table_name, "DIRECTORS");
}

TEST_F(ParserTest, TableAliases) {
  ParsedQuery q = Parse("SELECT M.title FROM MOVIES AS M WHERE M.year = 2008");
  const PlanNode* node = q.plan.get();
  while (node->kind != PlanKind::kScan) node = &node->child();
  EXPECT_EQ(node->alias, "M");
  // Implicit alias without AS.
  Parse("SELECT M.title FROM MOVIES M");
}

TEST_F(ParserTest, WhereBecomesSelect) {
  ParsedQuery q = Parse("SELECT title FROM MOVIES WHERE year >= 2005 AND d_id = 2");
  const PlanNode& select = q.plan->child();
  ASSERT_EQ(select.kind, PlanKind::kSelect);
  EXPECT_EQ(select.predicate->ToString(), "(year >= 2005 AND d_id = 2)");
}

TEST_F(ParserTest, PreferringClauseCreatesPreferNodes) {
  ParsedQuery q = Parse(
      "SELECT title FROM MOVIES "
      "PREFERRING (year >= 2005) SCORE recency(year, 2011) CONF 0.9, "
      "           (duration <= 120) SCORE 0.5 CONF 0.4");
  EXPECT_EQ(q.preferences.size(), 2u);
  EXPECT_EQ(q.plan->CountKind(PlanKind::kPrefer), 2u);
  EXPECT_EQ(q.preferences[0]->name(), "p1");
  EXPECT_NEAR(q.preferences[0]->confidence(), 0.9, 1e-12);
  EXPECT_EQ(q.preferences[0]->relations(), std::vector<std::string>{"MOVIES"});
}

TEST_F(ParserTest, NamedPreference) {
  ParsedQuery q = Parse(
      "SELECT title FROM MOVIES "
      "PREFERRING fav: (year >= 2005) SCORE 1.0 CONF 1");
  ASSERT_EQ(q.preferences.size(), 1u);
  EXPECT_EQ(q.preferences[0]->name(), "fav");
}

TEST_F(ParserTest, ProjectionIncludesPreferenceAttributes) {
  // The paper's parser adds projections for all prefer-operator attributes.
  ParsedQuery q = Parse(
      "SELECT title FROM MOVIES "
      "PREFERRING (duration <= 120) SCORE around(duration, 120) CONF 0.5");
  ASSERT_EQ(q.plan->kind, PlanKind::kProject);
  const std::vector<std::string>& cols = q.plan->project_columns;
  EXPECT_NE(std::find(cols.begin(), cols.end(), "duration"), cols.end());
  // But the user-visible output is just `title`.
  EXPECT_EQ(q.output_columns, std::vector<std::string>{"title"});
}

TEST_F(ParserTest, MultiRelationalPreferenceDerivesRelations) {
  ParsedQuery q = Parse(
      "SELECT title FROM MOVIES JOIN GENRES ON MOVIES.m_id = GENRES.m_id "
      "PREFERRING (genre = 'Action') SCORE recency(year, 2011) CONF 0.8");
  ASSERT_EQ(q.preferences.size(), 1u);
  EXPECT_TRUE(q.preferences[0]->IsMultiRelational());
  EXPECT_EQ(q.preferences[0]->relations().size(), 2u);
}

TEST_F(ParserTest, MembershipPreference) {
  ParsedQuery q = Parse(
      "SELECT title FROM MOVIES "
      "PREFERRING (true) SCORE 1.0 CONF 0.9 EXISTS IN AWARDS ON m_id = m_id");
  ASSERT_EQ(q.preferences.size(), 1u);
  const MembershipSpec* m = q.preferences[0]->membership();
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->member_relation, "AWARDS");
  EXPECT_EQ(m->local_column, "m_id");
}

TEST_F(ParserTest, MembershipUnknownRelationFails) {
  ParseError(
      "SELECT title FROM MOVIES "
      "PREFERRING (true) SCORE 1.0 CONF 0.9 EXISTS IN NOPE ON m_id = m_id");
}

TEST_F(ParserTest, AggregateFunctionClause) {
  ParsedQuery q = Parse(
      "SELECT title FROM MOVIES "
      "PREFERRING (true) SCORE 1.0 CONF 1 USING AGG maxconf");
  EXPECT_EQ(q.agg->name(), "maxconf");
  ParseError("SELECT title FROM MOVIES USING AGG bogus");
}

TEST_F(ParserTest, FilterClauses) {
  ParsedQuery q = Parse(
      "SELECT title FROM MOVIES "
      "PREFERRING (true) SCORE 1.0 CONF 1 "
      "WITH CONF >= 0.5 TOP 10 BY SCORE");
  ASSERT_EQ(q.filters.size(), 2u);
  EXPECT_EQ(q.filters[0].kind, FilterSpec::Kind::kThreshold);
  EXPECT_EQ(q.filters[0].target, FilterTarget::kConf);
  EXPECT_FALSE(q.filters[0].strict);
  EXPECT_EQ(q.filters[1].kind, FilterSpec::Kind::kTopK);
  EXPECT_EQ(q.filters[1].k, 10u);
}

TEST_F(ParserTest, RankedAndNotDominated) {
  ParsedQuery q = Parse(
      "SELECT title FROM MOVIES PREFERRING (true) SCORE 1.0 CONF 1 "
      "NOT DOMINATED RANKED");
  ASSERT_EQ(q.filters.size(), 2u);
  EXPECT_EQ(q.filters[0].kind, FilterSpec::Kind::kNotDominated);
  EXPECT_EQ(q.filters[1].kind, FilterSpec::Kind::kRankAll);
}

TEST_F(ParserTest, StrictThreshold) {
  ParsedQuery q = Parse(
      "SELECT title FROM MOVIES PREFERRING (true) SCORE 1.0 CONF 1 "
      "WITH SCORE > 0.25");
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_TRUE(q.filters[0].strict);
  EXPECT_DOUBLE_EQ(q.filters[0].threshold, 0.25);
}

TEST_F(ParserTest, WithMatchesFilter) {
  ParsedQuery q = Parse(
      "SELECT title FROM MOVIES PREFERRING (true) SCORE 1.0 CONF 1 "
      "WITH MATCHES >= 2 RANKED");
  ASSERT_EQ(q.filters.size(), 2u);
  EXPECT_EQ(q.filters[0].kind, FilterSpec::Kind::kMinMatches);
  EXPECT_EQ(q.filters[0].k, 2u);
  ParseError(
      "SELECT title FROM MOVIES PREFERRING (true) SCORE 1 CONF 1 "
      "WITH MATCHES > 2");
}

TEST_F(ParserTest, OrderByAndLimitBecomePlanNodes) {
  ParsedQuery q = Parse("SELECT title FROM MOVIES ORDER BY year DESC LIMIT 3");
  ASSERT_EQ(q.plan->kind, PlanKind::kLimit);
  EXPECT_EQ(q.plan->limit, 3u);
  ASSERT_EQ(q.plan->child().kind, PlanKind::kSort);
  EXPECT_TRUE(q.plan->child().sort_keys[0].descending);
}

TEST_F(ParserTest, DistinctBecomesPlanNode) {
  ParsedQuery q = Parse("SELECT DISTINCT d_id FROM MOVIES");
  EXPECT_EQ(q.plan->kind, PlanKind::kDistinct);
}

TEST_F(ParserTest, UnionOfBlocks) {
  ParsedQuery q = Parse(
      "SELECT title, year FROM MOVIES WHERE year >= 2008 "
      "UNION "
      "SELECT title, year FROM MOVIES WHERE d_id = 2");
  EXPECT_EQ(q.plan->kind, PlanKind::kUnion);
}

TEST_F(ParserTest, SemijoinClause) {
  ParsedQuery q = Parse(
      "SELECT title FROM MOVIES "
      "SEMIJOIN AWARDS ON MOVIES.m_id = AWARDS.m_id");
  EXPECT_EQ(q.plan->child().kind, PlanKind::kSemiJoin);
}

TEST_F(ParserTest, ExpressionPrecedence) {
  auto e = ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "(1 + (2 * 3))");
  e = ParseExpression("a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "(a = 1 OR (b = 2 AND c = 3))");
  e = ParseExpression("NOT a = 1");
  ASSERT_TRUE(e.ok());
  // NOT binds looser than comparison.
  EXPECT_EQ((*e)->ToString(), "NOT (a = 1)");
}

TEST_F(ParserTest, BetweenDesugarsToRange) {
  auto e = ParseExpression("x BETWEEN 2 AND 5");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "(x >= 2 AND x <= 5)");
}

TEST_F(ParserTest, InListAndUnaryMinus) {
  auto e = ParseExpression("g IN ('a', 'b', 3)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "g IN ('a', 'b', 3)");
  e = ParseExpression("-5 + x");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "(-5 + x)");
  e = ParseExpression("-x");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "(0 - x)");
}

TEST_F(ParserTest, ErrorsAreInformative) {
  Status st = ParseErrorStatus("SELECT title FROM NOPE");
  EXPECT_NE(st.message().find("unknown table"), std::string::npos);
  ParseError("SELECT FROM MOVIES");
  ParseError("SELECT title MOVIES");
  ParseError("SELECT title FROM MOVIES PREFERRING year > 2 SCORE 1 CONF 1");
  ParseError("SELECT title FROM MOVIES WHERE nonexistent = 1");
  ParseError("SELECT title FROM MOVIES TRAILING GARBAGE");
  ParseError("SELECT title FROM MOVIES TOP x BY SCORE");
  ParseError("SELECT title FROM MOVIES PREFERRING (x = ) SCORE 1 CONF 1");
}

TEST_F(ParserTest, PreferenceConditionMustBind) {
  Status st = ParseErrorStatus(
      "SELECT title FROM MOVIES PREFERRING (genre = 'Comedy') SCORE 1 CONF 1");
  EXPECT_NE(st.message().find("preference condition"), std::string::npos);
}

TEST_F(ParserTest, FullKitchenSinkQueryParses) {
  ParsedQuery q = Parse(
      "SELECT title, director FROM MOVIES "
      "JOIN DIRECTORS ON MOVIES.d_id = DIRECTORS.d_id "
      "JOIN GENRES ON MOVIES.m_id = GENRES.m_id "
      "WHERE year BETWEEN 2004 AND 2011 AND genre IN ('Drama', 'Comedy') "
      "PREFERRING "
      "  eastwood: (director LIKE '%Eastwood') SCORE 0.9 CONF 0.8, "
      "  (year >= 2005) SCORE 0.5 * recency(year, 2011) + 0.5 CONF 0.9, "
      "  (true) SCORE 1.0 CONF 0.9 EXISTS IN AWARDS ON MOVIES.m_id = m_id "
      "USING AGG wsum "
      "WITH CONF >= 0.5 "
      "TOP 5 BY SCORE");
  EXPECT_EQ(q.preferences.size(), 3u);
  EXPECT_EQ(q.filters.size(), 2u);
  EXPECT_EQ(q.plan->CountKind(PlanKind::kPrefer), 3u);
  EXPECT_EQ(q.plan->CountKind(PlanKind::kJoin), 2u);
}

}  // namespace
}  // namespace prefdb

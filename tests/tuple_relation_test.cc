#include <unordered_set>

#include "gtest/gtest.h"
#include "test_util.h"
#include "types/relation.h"
#include "types/tuple.h"

namespace prefdb {
namespace {

using testing_util::I;
using testing_util::S;

TEST(TupleTest, ConcatAndProject) {
  Tuple a{I(1), S("x")};
  Tuple b{I(2)};
  Tuple c = ConcatTuples(a, b);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[2], I(2));
  Tuple p = ProjectTuple(c, {2, 0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], I(2));
  EXPECT_EQ(p[1], I(1));
}

TEST(TupleTest, HashAndEquality) {
  TupleHash hash;
  TupleEq eq;
  Tuple a{I(1), S("x")};
  Tuple b{I(1), S("x")};
  Tuple c{I(1), S("y")};
  EXPECT_TRUE(eq(a, b));
  EXPECT_FALSE(eq(a, c));
  EXPECT_FALSE(eq(a, Tuple{I(1)}));
  EXPECT_EQ(hash(a), hash(b));
  std::unordered_set<Tuple, TupleHash, TupleEq> set;
  set.insert(a);
  EXPECT_EQ(set.count(b), 1u);
  EXPECT_EQ(set.count(c), 0u);
}

TEST(TupleTest, CrossTypeNumericKeysCollide) {
  TupleHash hash;
  TupleEq eq;
  Tuple a{I(2)};
  Tuple b{Value::Double(2.0)};
  EXPECT_TRUE(eq(a, b));
  EXPECT_EQ(hash(a), hash(b));
}

TEST(TupleTest, ToString) {
  EXPECT_EQ(TupleToString({I(1), S("hi")}), "(1, 'hi')");
  EXPECT_EQ(TupleToString({}), "()");
}

TEST(RelationTest, BasicAccessors) {
  Relation rel(Schema({{"T", "a", ValueType::kInt}}));
  EXPECT_TRUE(rel.empty());
  rel.AddRow({I(1)});
  rel.AddRow({I(2)});
  EXPECT_EQ(rel.NumRows(), 2u);
  EXPECT_FALSE(rel.empty());
}

TEST(RelationTest, KeyExtraction) {
  Relation rel(Schema({{"T", "a", ValueType::kInt},
                       {"T", "b", ValueType::kString},
                       {"T", "c", ValueType::kInt}}));
  rel.set_key_columns({0, 2});
  EXPECT_TRUE(rel.HasKey());
  Tuple key = rel.KeyOf({I(7), S("x"), I(9)});
  ASSERT_EQ(key.size(), 2u);
  EXPECT_EQ(key[0], I(7));
  EXPECT_EQ(key[1], I(9));
}

TEST(RelationTest, CheckWellFormedDetectsArityMismatch) {
  Relation rel(Schema({{"T", "a", ValueType::kInt}}));
  rel.AddRow({I(1), I(2)});
  EXPECT_FALSE(rel.CheckWellFormed().ok());
}

TEST(RelationTest, CheckWellFormedDetectsBadKey) {
  Relation rel(Schema({{"T", "a", ValueType::kInt}}));
  rel.set_key_columns({3});
  EXPECT_FALSE(rel.CheckWellFormed().ok());
}

TEST(RelationTest, ToStringTruncates) {
  Relation rel(Schema({{"T", "a", ValueType::kInt}}));
  for (int i = 0; i < 30; ++i) rel.AddRow({I(i)});
  std::string s = rel.ToString(5);
  EXPECT_NE(s.find("[30 rows]"), std::string::npos);
  EXPECT_NE(s.find("25 more"), std::string::npos);
}

}  // namespace
}  // namespace prefdb

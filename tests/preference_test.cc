#include "prefs/preference.h"

#include "expr/expr_builder.h"
#include "gtest/gtest.h"

namespace prefdb {
namespace {

using namespace eb;  // NOLINT

TEST(PreferenceTest, AtomicPreferenceMatchesPaperP1) {
  // Paper p_1[MOVIES] = (σ_{m_id=m3}, 0.8, 1): an explicit user rating.
  PreferencePtr p = Preference::Atomic("MOVIES", "m_id", Value::Int(3), 0.8);
  EXPECT_EQ(p->relations(), std::vector<std::string>{"MOVIES"});
  EXPECT_DOUBLE_EQ(p->confidence(), 1.0);
  EXPECT_EQ(p->condition().ToString(), "m_id = 3");

  Schema schema({{"MOVIES", "m_id", ValueType::kInt}});
  ExprPtr cond = p->CloneCondition();
  ASSERT_TRUE(cond->Bind(schema).ok());
  EXPECT_TRUE(IsTruthy(cond->Eval({Value::Int(3)})));
  EXPECT_FALSE(IsTruthy(cond->Eval({Value::Int(1)})));

  ScoringFunction scoring = p->CloneScoring();
  ASSERT_TRUE(scoring.Bind(schema).ok());
  EXPECT_DOUBLE_EQ(*scoring.Score({Value::Int(3)}), 0.8);
}

TEST(PreferenceTest, GenericPreferenceMatchesPaperP3) {
  // Paper p_3[GENRES] = (σ_{genre='Comedy'}, 1, 0.8).
  PreferencePtr p = Preference::Generic(
      "p3", "GENRES", Eq(Col("genre"), Lit("Comedy")),
      ScoringFunction::Constant(1.0), 0.8);
  EXPECT_EQ(p->name(), "p3");
  EXPECT_FALSE(p->IsMultiRelational());
  EXPECT_EQ(p->membership(), nullptr);
  EXPECT_DOUBLE_EQ(p->confidence(), 0.8);
}

TEST(PreferenceTest, ConfidenceClampedToUnitInterval) {
  PreferencePtr p = Preference::Generic("p", "R", True(),
                                        ScoringFunction::Constant(1.0), 3.0);
  EXPECT_DOUBLE_EQ(p->confidence(), 1.0);
  PreferencePtr q = Preference::Generic("q", "R", True(),
                                        ScoringFunction::Constant(1.0), -1.0);
  EXPECT_DOUBLE_EQ(q->confidence(), 0.0);
}

TEST(PreferenceTest, MultiRelationalMatchesPaperP6) {
  // Paper p_6[MOVIES × GENRES] = (σ_{genre='Action'}, S_m(year,2011), 0.8).
  std::vector<ExprPtr> args;
  args.push_back(Col("year"));
  args.push_back(Lit(int64_t{2011}));
  PreferencePtr p = Preference::MultiRelational(
      "p6", {"MOVIES", "GENRES"}, Eq(Col("genre"), Lit("Action")),
      ScoringFunction(Fn("recency", std::move(args))), 0.8);
  EXPECT_TRUE(p->IsMultiRelational());
  EXPECT_EQ(p->relations().size(), 2u);
}

TEST(PreferenceTest, MembershipMatchesPaperP7) {
  // Paper p_7[MOVIES ⋉ AWARDS] = (σ_true, 1, 0.9).
  PreferencePtr p = Preference::Membership(
      "p7", "MOVIES", MembershipSpec{"AWARDS", "m_id", "m_id"}, True(),
      ScoringFunction::Constant(1.0), 0.9);
  ASSERT_NE(p->membership(), nullptr);
  EXPECT_EQ(p->membership()->member_relation, "AWARDS");
  EXPECT_EQ(p->membership()->local_column, "m_id");
  EXPECT_TRUE(p->IsMultiRelational());  // Targets MOVIES and AWARDS.
}

TEST(PreferenceTest, ReferencedColumnsDeduplicated) {
  PreferencePtr p = Preference::Generic(
      "p", "RATINGS", Gt(Col("votes"), Lit(int64_t{500})),
      ScoringFunction(Mul(Lit(0.1), Col("rating"))), 0.8);
  std::vector<std::string> cols = p->ReferencedColumns();
  ASSERT_EQ(cols.size(), 2u);  // rating, votes (sorted, unique).
  EXPECT_EQ(cols[0], "rating");
  EXPECT_EQ(cols[1], "votes");
}

TEST(PreferenceTest, ToStringIsInformative) {
  PreferencePtr p = Preference::Generic(
      "p3", "GENRES", Eq(Col("genre"), Lit("Comedy")),
      ScoringFunction::Constant(1.0), 0.8);
  std::string s = p->ToString();
  EXPECT_NE(s.find("p3"), std::string::npos);
  EXPECT_NE(s.find("GENRES"), std::string::npos);
  EXPECT_NE(s.find("genre = 'Comedy'"), std::string::npos);
  EXPECT_NE(s.find("0.80"), std::string::npos);
}

TEST(PreferenceTest, ClonedPartsAreIndependent) {
  PreferencePtr p = Preference::Generic(
      "p", "R", Eq(Col("x"), Lit(int64_t{1})), ScoringFunction(Col("x")), 0.5);
  Schema schema({{"R", "x", ValueType::kInt}});
  ExprPtr c1 = p->CloneCondition();
  ExprPtr c2 = p->CloneCondition();
  ASSERT_TRUE(c1->Bind(schema).ok());
  // c2 is unbound and unaffected; binding it to a different schema works.
  Schema other({{"Q", "x", ValueType::kInt}});
  ASSERT_TRUE(c2->Bind(other).ok());
}

}  // namespace
}  // namespace prefdb

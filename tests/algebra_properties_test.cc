// Randomized property tests for the algebraic laws of the prefer operator
// (paper Prop. 4.1 - 4.4). These laws are exactly what the preference-aware
// optimizer's rewrite rules rely on, so they are verified here over random
// relations, random pre-existing scores, random preferences, and every
// registered aggregate function.

#include "common/rng.h"
#include "expr/expr_builder.h"
#include "gtest/gtest.h"
#include "palgebra/p_ops.h"
#include "test_util.h"

namespace prefdb {
namespace {

using namespace eb;  // NOLINT
using testing_util::ExpectSameRows;

struct PropertyCase {
  const AggregateFunction* agg;
  uint64_t seed;
};

class AlgebraPropertyTest : public ::testing::TestWithParam<PropertyCase> {
 protected:
  // Random relation R(id, a, b, tag) with key id and random sparse scores.
  PRelation RandomR(Rng* rng, size_t n) {
    Relation rel(Schema({{"R", "id", ValueType::kInt},
                         {"R", "a", ValueType::kInt},
                         {"R", "b", ValueType::kDouble},
                         {"R", "tag", ValueType::kString}}));
    rel.set_key_columns({0});
    static constexpr const char* kTags[] = {"x", "y", "z"};
    for (size_t i = 0; i < n; ++i) {
      rel.AddRow({Value::Int(static_cast<int64_t>(i)),
                  Value::Int(rng->Uniform(0, 20)),
                  Value::Double(rng->UniformReal(0.0, 1.0)),
                  Value::String(kTags[rng->Uniform(0, 2)])});
    }
    PRelation p(std::move(rel));
    for (size_t i = 0; i < n; ++i) {
      if (rng->Bernoulli(0.4)) {
        p.scores.Set({Value::Int(static_cast<int64_t>(i))},
                     ScoreConf::Known(rng->UniformReal(0.0, 1.0),
                                      rng->UniformReal(0.05, 1.5)));
      }
    }
    return p;
  }

  // Random relation T(tid, rid) joining into R on rid = R.id.
  PRelation RandomT(Rng* rng, size_t n, size_t r_size) {
    Relation rel(Schema({{"T", "tid", ValueType::kInt},
                         {"T", "rid", ValueType::kInt}}));
    rel.set_key_columns({0});
    for (size_t i = 0; i < n; ++i) {
      rel.AddRow({Value::Int(static_cast<int64_t>(i)),
                  Value::Int(rng->Uniform(0, static_cast<int64_t>(r_size) - 1))});
    }
    PRelation p(std::move(rel));
    for (size_t i = 0; i < n; ++i) {
      if (rng->Bernoulli(0.3)) {
        p.scores.Set({Value::Int(static_cast<int64_t>(i))},
                     ScoreConf::Known(rng->UniformReal(0.0, 1.0),
                                      rng->UniformReal(0.05, 1.0)));
      }
    }
    return p;
  }

  // A random preference over R's attributes.
  PreferencePtr RandomPref(Rng* rng, int ordinal) {
    ExprPtr cond;
    switch (rng->Uniform(0, 3)) {
      case 0:
        cond = Le(Col("a"), Lit(rng->Uniform(0, 20)));
        break;
      case 1:
        cond = Gt(Col("b"), Lit(rng->UniformReal(0.0, 1.0)));
        break;
      case 2:
        cond = Eq(Col("tag"), Lit("x"));
        break;
      default:
        cond = True();
    }
    ScoringFunction scoring = [&]() -> ScoringFunction {
      switch (rng->Uniform(0, 2)) {
        case 0:
          return ScoringFunction::Constant(rng->UniformReal(0.0, 1.0));
        case 1:
          return ScoringFunction(Col("b"));
        default:
          return ScoringFunction(Mul(Lit(0.05), Col("a")));
      }
    }();
    return Preference::Generic("rp" + std::to_string(ordinal), "R",
                               std::move(cond), std::move(scoring),
                               rng->UniformReal(0.1, 1.0));
  }

  // A random hard selection over R's attributes.
  ExprPtr RandomSelection(Rng* rng) {
    if (rng->Bernoulli(0.5)) return Ge(Col("a"), Lit(rng->Uniform(0, 20)));
    return Ne(Col("tag"), Lit("y"));
  }

  static void ExpectSamePRelation(const PRelation& a, const PRelation& b) {
    ExpectSameRows(ToScoredRelation(a), ToScoredRelation(b), 1e-9);
  }

  ExecStats stats_;
};

// Prop. 4.1: σ_φ λ_p (R) == λ_p σ_φ (R).
TEST_P(AlgebraPropertyTest, PreferCommutesWithSelect) {
  Rng rng(GetParam().seed);
  const AggregateFunction& agg = *GetParam().agg;
  for (int round = 0; round < 8; ++round) {
    PRelation r = RandomR(&rng, 40);
    PreferencePtr p = RandomPref(&rng, round);
    ExprPtr sel = RandomSelection(&rng);

    auto pref_first = EvalPrefer(*p, r, agg, nullptr, &stats_);
    ASSERT_TRUE(pref_first.ok());
    auto lhs = PSelect(*sel, *pref_first, &stats_);
    ASSERT_TRUE(lhs.ok());

    auto sel_first = PSelect(*sel, r, &stats_);
    ASSERT_TRUE(sel_first.ok());
    auto rhs = EvalPrefer(*p, *sel_first, agg, nullptr, &stats_);
    ASSERT_TRUE(rhs.ok());

    ExpectSamePRelation(*lhs, *rhs);
  }
}

// Prop. 4.2: σ_φ' λ_p (R) == σ_φ' λ_p' (R), where p' strengthens p's
// condition with φ'.
TEST_P(AlgebraPropertyTest, SelectionFoldsIntoCondition) {
  Rng rng(GetParam().seed + 1000);
  const AggregateFunction& agg = *GetParam().agg;
  for (int round = 0; round < 8; ++round) {
    PRelation r = RandomR(&rng, 40);
    PreferencePtr p = RandomPref(&rng, round);
    ExprPtr sel = RandomSelection(&rng);

    auto lhs_pref = EvalPrefer(*p, r, agg, nullptr, &stats_);
    ASSERT_TRUE(lhs_pref.ok());
    auto lhs = PSelect(*sel, *lhs_pref, &stats_);
    ASSERT_TRUE(lhs.ok());

    PreferencePtr strengthened = Preference::Generic(
        p->name() + "'", "R", And(p->CloneCondition(), sel->Clone()),
        p->CloneScoring(), p->confidence());
    auto rhs_pref = EvalPrefer(*strengthened, r, agg, nullptr, &stats_);
    ASSERT_TRUE(rhs_pref.ok());
    auto rhs = PSelect(*sel, *rhs_pref, &stats_);
    ASSERT_TRUE(rhs.ok());

    ExpectSamePRelation(*lhs, *rhs);
  }
}

// Prop. 4.3: λ_p1 λ_p2 (R) == λ_p2 λ_p1 (R).
TEST_P(AlgebraPropertyTest, PreferIsCommutative) {
  Rng rng(GetParam().seed + 2000);
  const AggregateFunction& agg = *GetParam().agg;
  for (int round = 0; round < 8; ++round) {
    PRelation r = RandomR(&rng, 40);
    PreferencePtr p1 = RandomPref(&rng, 2 * round);
    PreferencePtr p2 = RandomPref(&rng, 2 * round + 1);

    auto a1 = EvalPrefer(*p1, r, agg, nullptr, &stats_);
    ASSERT_TRUE(a1.ok());
    auto lhs = EvalPrefer(*p2, *a1, agg, nullptr, &stats_);
    ASSERT_TRUE(lhs.ok());

    auto b1 = EvalPrefer(*p2, r, agg, nullptr, &stats_);
    ASSERT_TRUE(b1.ok());
    auto rhs = EvalPrefer(*p1, *b1, agg, nullptr, &stats_);
    ASSERT_TRUE(rhs.ok());

    ExpectSamePRelation(*lhs, *rhs);
  }
}

// Prop. 4.4 over joins: λ_p (R ⋈ T) == λ_p(R) ⋈ T when p only references R.
TEST_P(AlgebraPropertyTest, PreferPushesOverJoin) {
  Rng rng(GetParam().seed + 3000);
  const AggregateFunction& agg = *GetParam().agg;
  for (int round = 0; round < 8; ++round) {
    PRelation r = RandomR(&rng, 30);
    PRelation t = RandomT(&rng, 50, 30);
    PreferencePtr p = RandomPref(&rng, round);
    ExprPtr join_cond = Eq(Col("R.id"), Col("T.rid"));

    auto joined = PJoin(*join_cond, r, t, agg, &stats_);
    ASSERT_TRUE(joined.ok());
    auto lhs = EvalPrefer(*p, *joined, agg, nullptr, &stats_);
    ASSERT_TRUE(lhs.ok());

    auto pushed = EvalPrefer(*p, r, agg, nullptr, &stats_);
    ASSERT_TRUE(pushed.ok());
    auto rhs = PJoin(*join_cond, *pushed, t, agg, &stats_);
    ASSERT_TRUE(rhs.ok());

    ExpectSamePRelation(*lhs, *rhs);
  }
}

// Prop. 4.4 over intersection: λ_p (A ∩ B) == λ_p(A) ∩ B. Every result tuple
// is in A, so evaluating p on A covers all of them; associativity and
// commutativity of F do the rest.
TEST_P(AlgebraPropertyTest, PreferPushesOverIntersect) {
  Rng rng(GetParam().seed + 4000);
  const AggregateFunction& agg = *GetParam().agg;
  for (int round = 0; round < 8; ++round) {
    PRelation a = RandomR(&rng, 40);
    // B: a filtered copy of A with different scores.
    auto b_or = PSelect(*RandomSelection(&rng), a, &stats_);
    ASSERT_TRUE(b_or.ok());
    PRelation b = *b_or;
    b.scores.Clear();
    for (const Tuple& row : b.rel.rows()) {
      if (rng.Bernoulli(0.5)) {
        b.scores.Set(b.rel.KeyOf(row),
                     ScoreConf::Known(rng.UniformReal(0.0, 1.0),
                                      rng.UniformReal(0.05, 1.0)));
      }
    }
    PreferencePtr p = RandomPref(&rng, round);

    auto met = PIntersect(a, b, agg, &stats_);
    ASSERT_TRUE(met.ok());
    auto lhs = EvalPrefer(*p, *met, agg, nullptr, &stats_);
    ASSERT_TRUE(lhs.ok());

    auto pushed = EvalPrefer(*p, a, agg, nullptr, &stats_);
    ASSERT_TRUE(pushed.ok());
    auto rhs = PIntersect(*pushed, b, agg, &stats_);
    ASSERT_TRUE(rhs.ok());

    ExpectSamePRelation(*lhs, *rhs);
  }
}

// Prop. 4.4 over difference: λ_p (A − B) == λ_p(A) − B.
TEST_P(AlgebraPropertyTest, PreferPushesOverDifference) {
  Rng rng(GetParam().seed + 5000);
  const AggregateFunction& agg = *GetParam().agg;
  for (int round = 0; round < 8; ++round) {
    PRelation a = RandomR(&rng, 40);
    auto b_or = PSelect(*RandomSelection(&rng), a, &stats_);
    ASSERT_TRUE(b_or.ok());
    PreferencePtr p = RandomPref(&rng, round);

    auto diff = PDiff(a, *b_or, &stats_);
    ASSERT_TRUE(diff.ok());
    auto lhs = EvalPrefer(*p, *diff, agg, nullptr, &stats_);
    ASSERT_TRUE(lhs.ok());

    auto pushed = EvalPrefer(*p, a, agg, nullptr, &stats_);
    ASSERT_TRUE(pushed.ok());
    auto rhs = PDiff(*pushed, *b_or, &stats_);
    ASSERT_TRUE(rhs.ok());

    ExpectSamePRelation(*lhs, *rhs);
  }
}

std::vector<PropertyCase> MakeCases() {
  std::vector<PropertyCase> cases;
  for (const AggregateFunction* agg : AllAggregateFunctions()) {
    for (uint64_t seed : {11u, 29u}) {
      cases.push_back({agg, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregates, AlgebraPropertyTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return std::string(info.param.agg->name()) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace prefdb

// Tests for tools/prefdb_lint: each fixture under tests/lint_fixtures/
// must trigger exactly its rule, the clean fixture and the real src/ tree
// must produce zero violations, and the lint:allow escape hatch must work.
//
// The fixture tree mirrors the src/ layout (lint_fixtures/src/cache/...)
// because two rules are path-scoped; LintContent is also exercised with
// synthetic paths to pin the scoping behavior directly.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"

namespace prefdb::lint {
namespace {

std::string FixturePath(const std::string& rel) {
  return std::string(PREFDB_SOURCE_DIR) + "/tests/lint_fixtures/" + rel;
}

// Asserts the fixture triggers `rule` at least once and triggers no other
// rule (fixtures are minimal repros, not grab bags).
void ExpectOnlyRule(const std::string& fixture, const std::string& rule) {
  std::vector<Violation> violations = LintFile(FixturePath(fixture));
  ASSERT_FALSE(violations.empty()) << fixture << " triggered nothing";
  for (const Violation& v : violations) {
    EXPECT_EQ(v.rule, rule) << FormatViolation(v);
    EXPECT_GT(v.line, 0) << FormatViolation(v);
  }
}

TEST(LintFixtures, NakedStdMutexTriggers) {
  ExpectOnlyRule("src/parallel/naked_mutex.cc", "mutex-guarded-by");
}

TEST(LintFixtures, UnguardedWrapperMutexTriggers) {
  ExpectOnlyRule("src/parallel/unguarded_wrapper.cc", "mutex-guarded-by");
}

TEST(LintFixtures, TaskGroupWithoutWaitTriggers) {
  ExpectOnlyRule("src/parallel/missing_wait.cc", "taskgroup-wait");
}

TEST(LintFixtures, ExecutorTaskGroupWithoutWaitTriggers) {
  // The morsel-parallel native operators put fork/join code in src/engine;
  // the taskgroup-wait rule must catch an unjoined group there too (it is
  // not scoped to src/parallel).
  ExpectOnlyRule("src/engine/missing_wait_executor.cc", "taskgroup-wait");
}

TEST(LintFixtures, CatalogMutationOutsideEngineTriggers) {
  ExpectOnlyRule("src/exec/catalog_mutation.cc", "catalog-mutation");
}

TEST(LintFixtures, CacheNondeterminismTriggers) {
  ExpectOnlyRule("src/cache/nondeterminism.cc", "cache-determinism");
}

TEST(LintFixtures, TodoWithoutOwnerTriggers) {
  ExpectOnlyRule("src/common/todo_without_owner.h", "todo-owner");
}

TEST(LintFixtures, InlineMetricNameTriggers) {
  ExpectOnlyRule("src/exec/inline_metric_name.cc", "metric-registry");
}

TEST(LintFixtures, MorselLoopWithoutCheckpointTriggers) {
  ExpectOnlyRule("src/parallel/missing_checkpoint.cc", "governor-checkpoint");
}

TEST(LintFixtures, CleanFileIsClean) {
  std::vector<Violation> violations =
      LintFile(FixturePath("src/common/clean.h"));
  for (const Violation& v : violations) ADD_FAILURE() << FormatViolation(v);
}

// The gate itself: the real source tree carries zero violations. This is
// the same check `ctest -R prefdb_lint_src` runs via the CLI; keeping it
// here too means a plain `ctest` without labels still enforces it.
TEST(LintTree, SourceTreeIsClean) {
  std::vector<Violation> violations =
      LintTree(std::string(PREFDB_SOURCE_DIR) + "/src");
  for (const Violation& v : violations) ADD_FAILURE() << FormatViolation(v);
}

// ---- Rule-engine unit tests over in-memory content ----

TEST(LintContent, AllowSuppressesOnThatLineOnly) {
  const std::string content =
      "class C {\n"
      "  std::mutex a_;  // lint:allow(mutex-guarded-by) interop.\n"
      "  std::mutex b_;\n"
      "};\n";
  std::vector<Violation> v = LintContent("src/x/c.h", content);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "mutex-guarded-by");
  EXPECT_EQ(v[0].line, 3);
}

TEST(LintContent, WrapperMutexSatisfiedByGuardedBy) {
  const std::string content =
      "class C {\n"
      "  mutable Mutex mu_;\n"
      "  int x_ PREFDB_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_TRUE(LintContent("src/x/c.h", content).empty());
}

TEST(LintContent, MutexLockLocalIsNotAMutexDecl) {
  // Word-boundary check: "MutexLock lock(&mu_);" must not parse as a
  // declaration of a Mutex named "lock".
  const std::string content = "void F() { MutexLock lock(&mu_); }\n";
  EXPECT_TRUE(LintContent("src/x/c.cc", content).empty());
}

TEST(LintContent, TaskGroupWaitSameLineCounts) {
  const std::string content =
      "void F(ThreadPool* p) { TaskGroup g(p); g.Run([]{}); g.Wait(); }\n";
  EXPECT_TRUE(LintContent("src/x/c.cc", content).empty());
}

TEST(LintContent, TaskGroupClassDeclarationsDoNotTrigger) {
  const std::string content =
      "class TaskGroup {\n"
      " public:\n"
      "  explicit TaskGroup(ThreadPool* pool);\n"
      "  TaskGroup(const TaskGroup&) = delete;\n"
      "};\n"
      "TaskGroup::TaskGroup(ThreadPool* pool) : pool_(pool) {}\n";
  EXPECT_TRUE(LintContent("src/parallel/tp.h", content).empty());
}

TEST(LintContent, CatalogMutationAllowedUnderEngine) {
  const std::string content = "Catalog* mutable_catalog() { return &c_; }\n";
  EXPECT_TRUE(LintContent("src/engine/engine.h", content).empty());
  std::vector<Violation> v = LintContent("src/exec/strategies.cc", content);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "catalog-mutation");
}

TEST(LintContent, CatalogRuleIgnoresFilesOutsideSrc) {
  // Tests and benches may poke the catalog directly; the rule is about
  // engine-internal discipline.
  const std::string content = "auto* c = engine.mutable_catalog();\n";
  EXPECT_TRUE(LintContent("tests/engine_test.cc", content).empty());
}

TEST(LintContent, CacheDeterminismScopedToCacheDir) {
  const std::string content = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_FALSE(LintContent("src/cache/fingerprint.cc", content).empty());
  EXPECT_TRUE(LintContent("src/obs/trace.cc", content).empty());
}

TEST(LintContent, CacheDeterminismWordBoundary) {
  // "operand(" contains "rand(" mid-word and must not match.
  const std::string content = "int v = operand(0);\n";
  EXPECT_TRUE(LintContent("src/cache/fingerprint.cc", content).empty());
  EXPECT_FALSE(
      LintContent("src/cache/fingerprint.cc", "int v = rand();\n").empty());
}

TEST(LintContent, TodoWithOwnerIsClean) {
  const std::string with_owner = std::string("// TO") + "DO(bob): revisit.\n";
  EXPECT_TRUE(LintContent("src/x/c.h", with_owner).empty());
  const std::string bare = std::string("// TO") + "DO: revisit.\n";
  std::vector<Violation> v = LintContent("src/x/c.h", bare);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "todo-owner");
}

TEST(LintContent, MetricRegistryScopedToSrcOutsideRegistryHeader) {
  const std::string content = "metrics->counter(\"pref.x.y\")->Increment();\n";
  // The registry header itself and code outside src/ are exempt; anything
  // else under src/ must reference an obs::kPref* constant.
  EXPECT_TRUE(LintContent("src/obs/metric_names.h", content).empty());
  EXPECT_TRUE(LintContent("tests/obs_test.cc", content).empty());
  std::vector<Violation> v = LintContent("src/exec/runner.cc", content);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "metric-registry");
  // Comments and lint:allow escape the rule like everywhere else.
  EXPECT_TRUE(
      LintContent("src/exec/runner.cc", "// was \"pref.x.y\" once\n").empty());
  EXPECT_TRUE(LintContent("src/exec/runner.cc",
                          "counter(\"pref.x.y\");  "
                          "// lint:allow(metric-registry) migration\n")
                  .empty());
}

TEST(LintContent, GovernorCheckpointRuleMechanics) {
  // A lambda body with the checkpoint at its top is clean.
  const std::string with_checkpoint =
      "ParallelFor(plan, [&](size_t, const Morsel& m) {\n"
      "  GovernorCheckpoint(parallel);\n"
      "  Work(m);\n"
      "});\n";
  EXPECT_TRUE(LintContent("src/palgebra/p_ops.cc", with_checkpoint).empty());

  // The same body without it trips, including through the traced variant.
  const std::string without =
      "ParallelForTraced(plan, span, [&](size_t, const Morsel& m) {\n"
      "  Work(m);\n"
      "});\n";
  std::vector<Violation> v = LintContent("src/engine/executor.cc", without);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "governor-checkpoint");
  EXPECT_EQ(v[0].line, 1);

  // Forwarding a named callable carries no body to inspect — the callable's
  // construction site is where the rule applies. Declarations likewise.
  const std::string forward =
      "void ParallelForTraced(const MorselPlan& plan, obs::Span* parent,\n"
      "    const std::function<void(size_t, const Morsel&)>& fn);\n"
      "void F(const MorselPlan& plan, const Body& fn) {\n"
      "  ParallelFor(plan, fn);\n"
      "}\n";
  EXPECT_TRUE(LintContent("src/parallel/morsel.cc", forward).empty());

  // lint:allow inside the call span suppresses, and code outside src/ is
  // out of scope entirely.
  const std::string allowed =
      "ParallelFor(plan, [&](size_t, const Morsel& m) {\n"
      "  // wrapper only. lint:allow(governor-checkpoint)\n"
      "  fn(m);\n"
      "});\n";
  EXPECT_TRUE(LintContent("src/parallel/morsel.cc", allowed).empty());
  EXPECT_TRUE(LintContent("tests/morsel_test.cc", without).empty());
}

TEST(LintContent, CommentedOutCodeDoesNotTriggerCodeRules) {
  const std::string content =
      "// std::mutex old_mu_;\n"
      "// TaskGroup g(&pool);\n";
  EXPECT_TRUE(LintContent("src/x/c.cc", content).empty());
}

}  // namespace
}  // namespace prefdb::lint

// Tests for the parallel execution substrate: the work-stealing ThreadPool
// and TaskGroup (shutdown, exception propagation, stealing under skew) and
// the Morsel/ParallelFor layer (partitioning, determinism, caller
// participation, error paths).

#include "parallel/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/governor.h"
#include "gtest/gtest.h"
#include "parallel/morsel.h"

namespace prefdb {
namespace {

TEST(ThreadPoolTest, ConstructsAndJoinsIdle) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  // Destructor joins without any task submitted.
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ExecutesEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 1000; ++i) {
    group.Run([&counter] { counter.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor must run all 200 queued tasks before joining.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitHelpsRunQueuedTasks) {
  // The helping join: a thread blocked in Wait() drains queued pool tasks
  // instead of sleeping, so group tasks may legitimately run on the waiting
  // thread as well as on pool threads. Every task still runs exactly once.
  ThreadPool pool(2);
  std::set<std::thread::id> ids;
  std::mutex mu;
  std::atomic<int> ran{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 64; ++i) {
    group.Run([&] {
      {
        std::lock_guard<std::mutex> lock(mu);
        ids.insert(std::this_thread::get_id());
      }
      ran.fetch_add(1);
    });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), 64);
  EXPECT_GE(ids.size(), 1u);
}

TEST(ThreadPoolTest, NestedForkJoinDoesNotDeadlock) {
  // With a single worker, outer tasks blocked in an inner Wait() would
  // starve their queued inner tasks forever if waiting threads only
  // slept — the helping join is what lets nested fork/join (BU subtree
  // evaluation spawning morsel loops) complete.
  ThreadPool pool(1);
  std::atomic<int> inner_ran{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 4; ++i) {
    outer.Run([&] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 8; ++j) {
        inner.Run([&] { inner_ran.fetch_add(1); });
      }
      inner.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(inner_ran.load(), 32);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughTaskGroup) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 10; ++i) {
    group.Run([&completed, i] {
      if (i == 3) throw std::runtime_error("task 3 failed");
      completed.fetch_add(1);
    });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // The failure does not cancel the rest of the batch.
  EXPECT_EQ(completed.load(), 9);
}

TEST(ThreadPoolTest, WaitRethrowsFirstExceptionOnly) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  for (int i = 0; i < 8; ++i) {
    group.Run([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // A second Wait() returns cleanly: the error was consumed.
  group.Wait();
}

// Governor cancellation racing normal completion: some tasks finish before
// the trip, some hit a tripped checkpoint and unwind. Wait() must join
// every sibling (no task still touching `completed` after it returns) and
// rethrow the first captured QueryAbortedException with the trip's code.
TEST(ThreadPoolTest, WaitJoinsAllSiblingsWhenCancellationRacesCompletion) {
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(8);
    QueryGovernor governor;
    std::atomic<int> completed{0};
    std::atomic<int> started{0};
    TaskGroup group(&pool);
    for (int i = 0; i < 64; ++i) {
      group.Run([&] {
        // Exactly one task — the 32nd to start — trips the governor
        // mid-batch; earlier finishers race past, later ones unwind.
        if (started.fetch_add(1, std::memory_order_relaxed) + 1 == 32) {
          governor.Cancel();
        }
        GovernorCheckpoint(&governor);
        completed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    bool threw = false;
    try {
      group.Wait();
    } catch (const QueryAbortedException& aborted) {
      threw = true;
      EXPECT_EQ(aborted.status().code(), StatusCode::kCancelled);
    }
    ASSERT_TRUE(threw) << "round " << round;
    // Every task either completed or unwound; none is still in flight.
    EXPECT_EQ(started.load(), 64) << "round " << round;
    EXPECT_LT(completed.load(), 64) << "round " << round;
  }
}

// Stealing under skew: one task blocks a worker until every short task has
// run. Round-robin submission parks half the short tasks behind the blocked
// worker, so the test can only terminate if the other worker steals them —
// completion itself proves stealing, and the counter confirms it.
TEST(ThreadPoolTest, StealsQueuedTasksFromBusyWorker) {
  ThreadPool pool(2);
  constexpr int kShortTasks = 32;
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;

  pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    bool all_done = cv.wait_for(lock, std::chrono::seconds(30),
                                [&] { return done == kShortTasks; });
    EXPECT_TRUE(all_done) << "short tasks were not stolen from the blocked "
                             "worker's queue";
  });
  TaskGroup group(&pool);
  for (int i = 0; i < kShortTasks; ++i) {
    group.Run([&] {
      {
        std::lock_guard<std::mutex> lock(mu);
        ++done;
      }
      cv.notify_all();
    });
  }
  group.Wait();
  EXPECT_GE(pool.steal_count(), 1u);
}

TEST(MorselPlanTest, EmptyInputHasNoMorsels) {
  ParallelContext ctx = ParallelContext::Hardware();
  MorselPlan plan = MorselPlan::Make(0, ctx);
  EXPECT_TRUE(plan.serial());
  EXPECT_EQ(plan.morsel_count(), 0u);
}

TEST(MorselPlanTest, SmallInputFallsBackToSerial) {
  ParallelContext ctx;
  ctx.threads = 8;
  ctx.morsel_size = 16;
  ctx.min_parallel_rows = 1000;
  MorselPlan plan = MorselPlan::Make(999, ctx);
  EXPECT_TRUE(plan.serial());
  ASSERT_EQ(plan.morsel_count(), 1u);
  EXPECT_EQ(plan.morsel(0).begin, 0u);
  EXPECT_EQ(plan.morsel(0).end, 999u);
}

TEST(MorselPlanTest, SerialContextAlwaysSerial) {
  MorselPlan plan = MorselPlan::Make(1 << 20, ParallelContext::Serial());
  EXPECT_TRUE(plan.serial());
}

TEST(MorselPlanTest, PartitionsCoverInputExactly) {
  ParallelContext ctx;
  ctx.threads = 4;
  ctx.morsel_size = 100;
  ctx.min_parallel_rows = 0;
  MorselPlan plan = MorselPlan::Make(1050, ctx);
  EXPECT_FALSE(plan.serial());
  EXPECT_EQ(plan.morsel_count(), 11u);
  EXPECT_EQ(plan.slots(), 4u);
  size_t expected_begin = 0;
  for (size_t i = 0; i < plan.morsel_count(); ++i) {
    EXPECT_EQ(plan.morsel(i).begin, expected_begin);
    EXPECT_EQ(plan.morsel(i).index, i);
    expected_begin = plan.morsel(i).end;
  }
  EXPECT_EQ(expected_begin, 1050u);
  EXPECT_EQ(plan.morsel(10).size(), 50u);  // Trailing partial morsel.
}

TEST(MorselPlanTest, SlotsCappedByThreadBudget) {
  ParallelContext ctx;
  ctx.threads = 2;
  ctx.morsel_size = 10;
  ctx.min_parallel_rows = 0;
  EXPECT_EQ(MorselPlan::Make(1000, ctx).slots(), 2u);
  ctx.threads = 64;
  EXPECT_EQ(MorselPlan::Make(30, ctx).slots(), 3u);  // Capped by morsels.
}

TEST(ParallelForTest, VisitsEveryRowExactlyOnce) {
  ParallelContext ctx;
  ctx.threads = 8;
  ctx.morsel_size = 64;
  ctx.min_parallel_rows = 0;
  constexpr size_t kRows = 10'000;
  MorselPlan plan = MorselPlan::Make(kRows, ctx);
  std::vector<std::atomic<int>> visits(kRows);
  ParallelFor(plan, [&](size_t slot, const Morsel& m) {
    EXPECT_LT(slot, plan.slots());
    for (size_t i = m.begin; i < m.end; ++i) visits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kRows; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "row " << i;
  }
}

TEST(ParallelForTest, PropagatesWorkerException) {
  ParallelContext ctx;
  ctx.threads = 4;
  ctx.morsel_size = 8;
  ctx.min_parallel_rows = 0;
  MorselPlan plan = MorselPlan::Make(1000, ctx);
  EXPECT_THROW(ParallelFor(plan,
                           [&](size_t, const Morsel& m) {
                             if (m.index == 5) {
                               throw std::runtime_error("morsel failed");
                             }
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, SerialPlanRunsInlineOnCaller) {
  MorselPlan plan = MorselPlan::Make(100, ParallelContext::Serial());
  std::thread::id caller = std::this_thread::get_id();
  size_t rows_seen = 0;
  ParallelFor(plan, [&](size_t slot, const Morsel& m) {
    EXPECT_EQ(slot, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    rows_seen += m.size();
  });
  EXPECT_EQ(rows_seen, 100u);
}

}  // namespace
}  // namespace prefdb

#include "storage/catalog.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace prefdb {
namespace {

using testing_util::I;
using testing_util::S;

TEST(TableTest, CreateQualifiesSchemaWithName) {
  auto table = Table::Create(
      "T", Schema({{"", "id", ValueType::kInt}, {"", "x", ValueType::kString}}),
      {{I(1), S("a")}, {I(2), S("b")}}, {"id"});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->schema().column(0).qualifier, "T");
  EXPECT_EQ((*table)->NumRows(), 2u);
  EXPECT_EQ((*table)->primary_key(), std::vector<size_t>{0});
}

TEST(TableTest, CreateKeepsQualifiersWhenAsked) {
  auto table = Table::Create(
      "TMP", Schema({{"MOVIES", "m_id", ValueType::kInt}}), {{I(1)}}, {"m_id"},
      /*qualify_with_name=*/false);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->schema().column(0).qualifier, "MOVIES");
}

TEST(TableTest, CompositeKeysSortedCanonically) {
  auto table = Table::Create(
      "T",
      Schema({{"", "a", ValueType::kInt},
              {"", "b", ValueType::kInt},
              {"", "c", ValueType::kInt}}),
      {}, {"c", "a"});  // Declared out of order.
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->primary_key(), (std::vector<size_t>{0, 2}));
}

TEST(TableTest, CreateFailsOnUnknownKeyColumn) {
  auto table = Table::Create("T", Schema({{"", "a", ValueType::kInt}}), {},
                             {"missing"});
  EXPECT_FALSE(table.ok());
}

TEST(TableTest, CreateFailsOnMalformedRow) {
  auto table = Table::Create("T", Schema({{"", "a", ValueType::kInt}}),
                             {{I(1), I(2)}}, {"a"});
  EXPECT_FALSE(table.ok());
}

TEST(HashIndexTest, LookupFindsAllPositions) {
  Relation rel(Schema({{"T", "k", ValueType::kInt}}));
  rel.AddRow({I(5)});
  rel.AddRow({I(7)});
  rel.AddRow({I(5)});
  HashIndex index(rel, 0);
  EXPECT_EQ(index.NumKeys(), 2u);
  EXPECT_EQ(index.Lookup(I(5)).size(), 2u);
  EXPECT_EQ(index.Lookup(I(7)).size(), 1u);
  EXPECT_TRUE(index.Lookup(I(9)).empty());
}

TEST(TableTest, EnsureIndexIsCachedAndQueryable) {
  auto table_or = Table::Create(
      "T", Schema({{"", "id", ValueType::kInt}, {"", "g", ValueType::kInt}}),
      {{I(1), I(10)}, {I(2), I(10)}, {I(3), I(20)}}, {"id"});
  ASSERT_TRUE(table_or.ok());
  Table& table = **table_or;
  EXPECT_FALSE(table.HasIndex(1));
  const HashIndex& index = table.EnsureIndex(1);
  EXPECT_TRUE(table.HasIndex(1));
  EXPECT_EQ(index.Lookup(I(10)).size(), 2u);
  EXPECT_EQ(&table.EnsureIndex(1), &index);  // Cached instance.
}

TEST(TableTest, StatsComputedAndCached) {
  auto table_or = Table::Create(
      "T", Schema({{"", "id", ValueType::kInt}, {"", "x", ValueType::kDouble}}),
      {{I(1), testing_util::D(1.5)},
       {I(2), testing_util::D(3.5)},
       {I(3), testing_util::N()},
       {I(4), testing_util::D(1.5)}},
      {"id"});
  ASSERT_TRUE(table_or.ok());
  Table& table = **table_or;
  const ColumnStats& stats = table.Stats(1);
  EXPECT_EQ(stats.row_count, 4u);
  EXPECT_EQ(stats.null_count, 1u);
  EXPECT_EQ(stats.distinct_count, 2u);
  EXPECT_TRUE(stats.has_range);
  EXPECT_DOUBLE_EQ(stats.min, 1.5);
  EXPECT_DOUBLE_EQ(stats.max, 3.5);
  EXPECT_EQ(&table.Stats(1), &stats);
}

TEST(TableTest, StatsOnStringColumnHasNoRange) {
  auto table_or = Table::Create(
      "T", Schema({{"", "s", ValueType::kString}}), {{S("a")}, {S("b")}}, {"s"});
  ASSERT_TRUE(table_or.ok());
  EXPECT_FALSE((*table_or)->Stats(0).has_range);
  EXPECT_EQ((*table_or)->Stats(0).distinct_count, 2u);
}

TEST(CatalogTest, AddAndGet) {
  Catalog catalog = testing_util::MakeMovieCatalog();
  EXPECT_TRUE(catalog.HasTable("MOVIES"));
  EXPECT_TRUE(catalog.HasTable("movies"));  // Case-insensitive.
  auto table = catalog.GetTable("movies");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->name(), "MOVIES");
  EXPECT_FALSE(catalog.GetTable("NOPE").ok());
}

TEST(CatalogTest, DuplicateNameRejected) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.CreateTable("T", Schema({{"", "a", ValueType::kInt}}), {}, {"a"})
          .ok());
  Status st =
      catalog.CreateTable("t", Schema({{"", "a", ValueType::kInt}}), {}, {"a"});
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, DropTable) {
  Catalog catalog = testing_util::MakeMovieCatalog();
  EXPECT_TRUE(catalog.HasTable("AWARDS"));
  catalog.DropTable("awards");
  EXPECT_FALSE(catalog.HasTable("AWARDS"));
  catalog.DropTable("awards");  // Idempotent.
}

TEST(CatalogTest, TableNamesSortedAndTotals) {
  Catalog catalog = testing_util::MakeMovieCatalog();
  std::vector<std::string> names = catalog.TableNames();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names.front(), "AWARDS");
  EXPECT_EQ(names.back(), "RATINGS");
  EXPECT_EQ(catalog.TotalRows(), 5u + 3u + 6u + 4u + 1u);
}

}  // namespace
}  // namespace prefdb

#include "engine/cardinality.h"

#include "engine/native_optimizer.h"
#include "expr/expr_builder.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace prefdb {
namespace {

using namespace eb;  // NOLINT
using testing_util::MakeMovieCatalog;

class CardinalityTest : public ::testing::Test {
 protected:
  CardinalityTest() : catalog_(MakeMovieCatalog()) {
    movies_schema_ = (*catalog_.GetTable("MOVIES"))->schema();
  }
  Catalog catalog_;
  Schema movies_schema_;
};

TEST_F(CardinalityTest, EqualityUsesDistinctCount) {
  // MOVIES has 5 rows with 3 distinct d_id values.
  double sel = EstimateSelectivity(*Eq(Col("d_id"), Lit(int64_t{1})),
                                   movies_schema_, catalog_);
  EXPECT_NEAR(sel, 1.0 / 3.0, 1e-12);
  // m_id is unique: selectivity 1/5.
  sel = EstimateSelectivity(*Eq(Col("m_id"), Lit(int64_t{3})), movies_schema_,
                            catalog_);
  EXPECT_NEAR(sel, 1.0 / 5.0, 1e-12);
}

TEST_F(CardinalityTest, InequalityComplement) {
  double sel = EstimateSelectivity(*Ne(Col("m_id"), Lit(int64_t{3})),
                                   movies_schema_, catalog_);
  EXPECT_NEAR(sel, 4.0 / 5.0, 1e-12);
}

TEST_F(CardinalityTest, RangeInterpolation) {
  // MOVIES.year spans [2004, 2010]; year >= 2007 is half the span.
  double sel = EstimateSelectivity(*Ge(Col("year"), Lit(int64_t{2007})),
                                   movies_schema_, catalog_);
  EXPECT_NEAR(sel, 0.5, 1e-12);
  sel = EstimateSelectivity(*Lt(Col("year"), Lit(int64_t{2004})),
                            movies_schema_, catalog_);
  EXPECT_NEAR(sel, 0.0, 1e-12);
  sel = EstimateSelectivity(*Le(Col("year"), Lit(int64_t{2100})),
                            movies_schema_, catalog_);
  EXPECT_NEAR(sel, 1.0, 1e-12);
}

TEST_F(CardinalityTest, FlippedLiteralMirrorsOperator) {
  // 2007 <= year  ≡  year >= 2007.
  double flipped = EstimateSelectivity(*Le(Lit(int64_t{2007}), Col("year")),
                                       movies_schema_, catalog_);
  double direct = EstimateSelectivity(*Ge(Col("year"), Lit(int64_t{2007})),
                                      movies_schema_, catalog_);
  EXPECT_NEAR(flipped, direct, 1e-12);
}

TEST_F(CardinalityTest, ConjunctionMultipliesDisjunctionUnions) {
  ExprPtr a = Eq(Col("m_id"), Lit(int64_t{1}));      // 0.2
  ExprPtr b = Ge(Col("year"), Lit(int64_t{2007}));   // 0.5
  double s_and = EstimateSelectivity(*And(a->Clone(), b->Clone()),
                                     movies_schema_, catalog_);
  EXPECT_NEAR(s_and, 0.1, 1e-12);
  double s_or = EstimateSelectivity(*Or(a->Clone(), b->Clone()),
                                    movies_schema_, catalog_);
  EXPECT_NEAR(s_or, 0.2 + 0.5 - 0.1, 1e-12);
  double s_not = EstimateSelectivity(*Not(std::move(a)), movies_schema_, catalog_);
  EXPECT_NEAR(s_not, 0.8, 1e-12);
}

TEST_F(CardinalityTest, InListScalesWithSize) {
  double sel = EstimateSelectivity(
      *In(Col("m_id"), {Value::Int(1), Value::Int(2)}), movies_schema_, catalog_);
  EXPECT_NEAR(sel, 2.0 / 5.0, 1e-12);
}

TEST_F(CardinalityTest, LiteralPredicates) {
  EXPECT_DOUBLE_EQ(
      EstimateSelectivity(*Lit(int64_t{1}), movies_schema_, catalog_), 1.0);
  EXPECT_DOUBLE_EQ(
      EstimateSelectivity(*Lit(int64_t{0}), movies_schema_, catalog_), 0.0);
}

TEST_F(CardinalityTest, EquiJoinUsesMaxNdv) {
  Schema joined = movies_schema_.Concat((*catalog_.GetTable("GENRES"))->schema());
  double sel = EstimateSelectivity(*Eq(Col("MOVIES.m_id"), Col("GENRES.m_id")),
                                   joined, catalog_);
  // ndv(MOVIES.m_id) = 5, ndv(GENRES.m_id) = 5 → 1/5.
  EXPECT_NEAR(sel, 1.0 / 5.0, 1e-12);
}

TEST_F(CardinalityTest, UnresolvableFallsBackToDefault) {
  Schema computed({{"", "x", ValueType::kInt}});
  double sel = EstimateSelectivity(*Eq(Col("x"), Lit(int64_t{1})), computed,
                                   catalog_);
  EXPECT_NEAR(sel, 1.0 / 3.0, 1e-12);
}

TEST_F(CardinalityTest, ScanCardinality) {
  EXPECT_DOUBLE_EQ(EstimateScanCardinality("MOVIES", nullptr, catalog_), 5.0);
  ExprPtr pred = Eq(Col("m_id"), Lit(int64_t{1}));
  EXPECT_NEAR(EstimateScanCardinality("MOVIES", pred.get(), catalog_), 1.0,
              1e-12);
  EXPECT_DOUBLE_EQ(EstimateScanCardinality("NOPE", nullptr, catalog_), 0.0);
}

TEST_F(CardinalityTest, PlanCardinalityComposes) {
  PlanPtr join = plan::Join(Eq(Col("MOVIES.m_id"), Col("GENRES.m_id")),
                            plan::Scan("MOVIES"), plan::Scan("GENRES"));
  // 5 * 6 * (1/5) = 6.
  EXPECT_NEAR(EstimatePlanCardinality(*join, catalog_), 6.0, 1e-9);

  PlanPtr filtered = plan::Select(Ge(Col("year"), Lit(int64_t{2007})),
                                  plan::Scan("MOVIES"));
  EXPECT_NEAR(EstimatePlanCardinality(*filtered, catalog_), 2.5, 1e-9);

  PlanPtr limited = plan::Limit(2, plan::Scan("MOVIES"));
  EXPECT_NEAR(EstimatePlanCardinality(*limited, catalog_), 2.0, 1e-9);

  PlanPtr unioned = plan::Union(plan::Scan("MOVIES"), plan::Scan("MOVIES"));
  EXPECT_NEAR(EstimatePlanCardinality(*unioned, catalog_), 10.0, 1e-9);
}

}  // namespace
}  // namespace prefdb

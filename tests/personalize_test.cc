#include "exec/personalize.h"

#include "exec/runner.h"
#include "expr/expr_builder.h"
#include "gtest/gtest.h"
#include "prefs/qualitative.h"
#include "test_util.h"

namespace prefdb {
namespace {

using testing_util::MakeMovieCatalog;
using testing_util::S;

Profile AliceProfile() {
  Profile profile("alice");
  profile.Add(qualitative::Like("GENRES", "genre", Value::String("Comedy"), 0.8));
  profile.Add(Preference::Generic(
      "alice_recent", "MOVIES", eb::Ge(eb::Col("year"), eb::Lit(int64_t{2006})),
      [] {
        std::vector<ExprPtr> args;
        args.push_back(eb::Col("year"));
        args.push_back(eb::Lit(int64_t{2011}));
        return ScoringFunction(eb::Fn("recency", std::move(args)));
      }(),
      0.9));
  profile.Add(Preference::Generic(
      "alice_rating", "RATINGS", eb::Gt(eb::Col("votes"), eb::Lit(int64_t{100000})),
      ScoringFunction(eb::Mul(eb::Lit(0.1), eb::Col("rating"))), 0.7));
  return profile;
}

TEST(ProfileTest, RelevantFiltersByRelations) {
  Profile profile = AliceProfile();
  EXPECT_EQ(profile.size(), 3u);

  // Query over MOVIES only: the GENRES and RATINGS preferences don't apply.
  std::vector<PreferencePtr> relevant = profile.Relevant({"MOVIES"});
  ASSERT_EQ(relevant.size(), 1u);
  EXPECT_EQ(relevant[0]->name(), "alice_recent");

  // MOVIES + GENRES: two apply.
  relevant = profile.Relevant({"MOVIES", "GENRES"});
  EXPECT_EQ(relevant.size(), 2u);

  // All three relations.
  relevant = profile.Relevant({"movies", "genres", "ratings"});
  EXPECT_EQ(relevant.size(), 3u);
}

TEST(ProfileTest, MembershipMemberRelationNotRequired) {
  Profile profile("p");
  profile.Add(Preference::Membership(
      "awarded", "MOVIES", MembershipSpec{"AWARDS", "m_id", "m_id"},
      eb::True(), ScoringFunction::Constant(1.0), 0.9));
  // AWARDS need not appear in the query: it is probed via the catalog.
  EXPECT_EQ(profile.Relevant({"MOVIES"}).size(), 1u);
  EXPECT_EQ(profile.Relevant({"GENRES"}).size(), 0u);
}

TEST(ProfileTest, ToStringListsPreferences) {
  Profile profile = AliceProfile();
  std::string s = profile.ToString();
  EXPECT_NE(s.find("alice"), std::string::npos);
  EXPECT_NE(s.find("3 preferences"), std::string::npos);
  EXPECT_NE(s.find("alice_recent"), std::string::npos);
}

class PersonalizeTest : public ::testing::Test {
 protected:
  PersonalizeTest() : session_(MakeMovieCatalog()) {}
  Session session_;
};

TEST_F(PersonalizeTest, PlanRelationsListsScans) {
  auto parsed = ParseQuery(
      "SELECT title FROM MOVIES JOIN GENRES ON MOVIES.m_id = GENRES.m_id",
      session_.engine().catalog());
  ASSERT_TRUE(parsed.ok());
  std::vector<std::string> relations = PlanRelations(*parsed->plan);
  ASSERT_EQ(relations.size(), 2u);
}

TEST_F(PersonalizeTest, InjectsRelevantPreferences) {
  auto parsed = ParseQuery(
      "SELECT title FROM MOVIES JOIN GENRES ON MOVIES.m_id = GENRES.m_id "
      "WHERE year >= 2004",
      session_.engine().catalog());
  ASSERT_TRUE(parsed.ok());
  Profile profile = AliceProfile();
  auto injected = InjectProfile(&*parsed, profile, session_.engine().catalog());
  ASSERT_TRUE(injected.ok()) << injected.status().ToString();
  EXPECT_EQ(*injected, 2u);  // Comedy like + recency; RATINGS absent.
  EXPECT_EQ(parsed->plan->CountKind(PlanKind::kPrefer), 2u);
  // The projection was widened with preference attributes below the root.
  auto shape = DerivePlanShape(*parsed->plan, session_.engine().catalog());
  ASSERT_TRUE(shape.ok());
  EXPECT_TRUE(shape->schema.HasColumn("genre"));
}

TEST_F(PersonalizeTest, EndToEndPersonalizedQuery) {
  Profile profile = AliceProfile();
  auto plain = session_.Query(
      "SELECT title, year FROM MOVIES JOIN GENRES ON MOVIES.m_id = "
      "GENRES.m_id");
  ASSERT_TRUE(plain.ok());
  auto personalized = session_.QueryPersonalized(
      "SELECT title, year FROM MOVIES JOIN GENRES ON MOVIES.m_id = "
      "GENRES.m_id TOP 3 BY SCORE",
      profile);
  ASSERT_TRUE(personalized.ok()) << personalized.status().ToString();
  ASSERT_EQ(personalized->relation.NumRows(), 3u);
  // Wall Street (2010, recency 2010/2011 ≈ 0.9995) narrowly beats the
  // comedy Scoop, whose two matched preferences blend to
  // F_S(⟨1.0, 0.8⟩, ⟨2006/2011, 0.9⟩) ≈ 0.9987.
  EXPECT_EQ(personalized->relation.rows()[0][0], S("Wall Street"));
  EXPECT_NEAR(personalized->relation.rows()[0][2].NumericValue(),
              2010.0 / 2011.0, 1e-12);
  EXPECT_EQ(personalized->relation.rows()[1][0], S("Scoop"));
  double scoop_expected = (0.8 * 1.0 + 0.9 * (2006.0 / 2011.0)) / 1.7;
  EXPECT_NEAR(personalized->relation.rows()[1][2].NumericValue(),
              scoop_expected, 1e-12);
  // Scoop carries the most evidence (conf 1.7 vs 0.9).
  EXPECT_NEAR(personalized->relation.rows()[1][3].NumericValue(), 1.7, 1e-12);
}

TEST_F(PersonalizeTest, PersonalizationKeepsAnswerSet) {
  // Preferences are soft: personalizing never changes which tuples qualify.
  Profile profile = AliceProfile();
  const char* sql = "SELECT title FROM MOVIES WHERE year >= 2005 RANKED";
  auto plain = session_.Query(sql);
  ASSERT_TRUE(plain.ok());
  auto personalized = session_.QueryPersonalized(sql, profile);
  ASSERT_TRUE(personalized.ok());
  EXPECT_EQ(personalized->relation.NumRows(), plain->relation.NumRows());
}

TEST_F(PersonalizeTest, ComposesWithExplicitPreferring) {
  // Query-level preferences and injected profile preferences combine.
  Profile profile = AliceProfile();
  auto result = session_.QueryPersonalized(
      "SELECT title FROM MOVIES "
      "PREFERRING (duration <= 100) SCORE 1.0 CONF 0.5 RANKED",
      profile);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // 1 explicit + 1 injected (alice_recent; others target absent relations).
  // Count prefer nodes via a reparse-free check: scores exist for both the
  // short movie (Scoop 96min) and recent movies.
  bool scoop_scored = false;
  for (const Tuple& row : result->relation.rows()) {
    if (row[0] == S("Scoop") && row[1].is_numeric()) scoop_scored = true;
  }
  EXPECT_TRUE(scoop_scored);
}

TEST_F(PersonalizeTest, EmptyProfileIsNoOp) {
  Profile profile("empty");
  auto parsed = ParseQuery("SELECT title FROM MOVIES",
                           session_.engine().catalog());
  ASSERT_TRUE(parsed.ok());
  auto injected = InjectProfile(&*parsed, profile, session_.engine().catalog());
  ASSERT_TRUE(injected.ok());
  EXPECT_EQ(*injected, 0u);
  EXPECT_FALSE(parsed->plan->ContainsPrefer());
}

TEST_F(PersonalizeTest, InjectionBelowSortAndLimit) {
  Profile profile = AliceProfile();
  auto result = session_.QueryPersonalized(
      "SELECT title, year FROM MOVIES ORDER BY year DESC LIMIT 2", profile);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->relation.NumRows(), 2u);
}

}  // namespace
}  // namespace prefdb

// The central integration property of the system (paper §VI-B): every
// execution strategy — hybrid (FtP, BU, GBU) and plug-in (basic, combined) —
// must produce exactly the same preferential query answers, with and
// without the preference-aware optimizer. Verified over a generated IMDB
// database and a battery of queries covering joins, selections,
// multi-relational and membership preferences, every aggregate function and
// every filtering mode.

#include "datagen/imdb_gen.h"
#include "exec/runner.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "workload/workload.h"

namespace prefdb {
namespace {

using testing_util::ExpectSameRows;

class StrategyEquivalenceTest : public ::testing::TestWithParam<std::string> {
 protected:
  static Session* session() {
    static Session* instance = [] {
      ImdbOptions options;
      options.scale = 0.0008;  // ≈ 1.3k movies: fast but non-trivial.
      options.seed = 7;
      auto catalog = GenerateImdb(options);
      EXPECT_TRUE(catalog.ok());
      return new Session(std::move(*catalog));
    }();
    return instance;
  }
};

TEST_P(StrategyEquivalenceTest, AllStrategiesAgree) {
  const std::string& sql = GetParam();

  QueryOptions reference;
  reference.strategy = StrategyKind::kBU;
  reference.optimize = false;  // Unoptimized BU is the semantic baseline.
  auto expected = session()->Query(sql, reference);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString() << "\n" << sql;

  struct Config {
    StrategyKind kind;
    bool optimize;
  };
  const Config configs[] = {
      {StrategyKind::kBU, true},          {StrategyKind::kGBU, false},
      {StrategyKind::kGBU, true},         {StrategyKind::kFtP, false},
      {StrategyKind::kPlugInBasic, false}, {StrategyKind::kPlugInCombined, false},
  };
  for (const Config& config : configs) {
    QueryOptions options;
    options.strategy = config.kind;
    options.optimize = config.optimize;
    auto actual = session()->Query(sql, options);
    ASSERT_TRUE(actual.ok())
        << StrategyKindName(config.kind) << (config.optimize ? "+opt" : "")
        << ": " << actual.status().ToString() << "\n" << sql;
    EXPECT_EQ(actual->relation.schema(), expected->relation.schema());
    ExpectSameRows(actual->relation, expected->relation, 1e-9);
  }
}

std::vector<std::string> EquivalenceQueries() {
  std::vector<std::string> queries;
  // The Table II workload (IMDB part).
  for (const WorkloadQuery& q : ImdbWorkload()) queries.push_back(q.sql);
  // Parameterized sweeps at a few settings.
  queries.push_back(ImdbPreferenceSweep(1));
  queries.push_back(ImdbPreferenceSweep(4));
  queries.push_back(ImdbPreferenceSweep(8));
  queries.push_back(ImdbSelectivitySweep(0.05, 1200));
  queries.push_back(ImdbRelationsSweep(3));
  // Aggregate-function variations.
  queries.push_back(
      "SELECT title, year FROM MOVIES JOIN RATINGS ON MOVIES.m_id = "
      "RATINGS.m_id PREFERRING (votes > 100) SCORE rating_score(rating) CONF "
      "0.8, (year >= 2000) SCORE recency(year, 2011) CONF 0.9 USING AGG "
      "maxconf RANKED");
  queries.push_back(
      "SELECT title FROM MOVIES PREFERRING (year >= 2005) SCORE 0.9 CONF 0.5, "
      "(duration <= 100) SCORE 0.6 CONF 0.5 USING AGG maxscore RANKED");
  queries.push_back(
      "SELECT title FROM MOVIES PREFERRING (year >= 2005) SCORE 0.9 CONF 0.5, "
      "(duration <= 100) SCORE 0.6 CONF 0.5 USING AGG noisyor RANKED");
  // Filtering modes.
  queries.push_back(
      "SELECT title FROM MOVIES PREFERRING (year >= 2000) SCORE recency(year, "
      "2011) CONF 0.9 NOT DOMINATED");
  queries.push_back(
      "SELECT title FROM MOVIES PREFERRING (year >= 2000) SCORE recency(year, "
      "2011) CONF 0.9 WITH SCORE >= 0.99 RANKED");
  // Match-count filtering must agree across strategies (counts flow through
  // joins, unions and every evaluation order).
  queries.push_back(
      "SELECT title FROM MOVIES JOIN GENRES ON MOVIES.m_id = GENRES.m_id "
      "PREFERRING (genre = 'Comedy') SCORE 1.0 CONF 0.8, (year >= 2000) SCORE "
      "recency(year, 2011) CONF 0.9, (duration <= 110) SCORE 0.5 CONF 0.5 "
      "WITH MATCHES >= 2 RANKED");
  // Membership preference with an extra condition.
  queries.push_back(
      "SELECT title, year FROM MOVIES PREFERRING (year >= 1990) SCORE 1.0 "
      "CONF 0.9 EXISTS IN AWARDS ON m_id = m_id RANKED");
  // Conventional ORDER BY / LIMIT / DISTINCT around preferences.
  queries.push_back(
      "SELECT DISTINCT d_id FROM MOVIES PREFERRING (year >= 2005) SCORE 0.8 "
      "CONF 0.7 RANKED");
  queries.push_back(
      "SELECT title, year FROM MOVIES PREFERRING (year >= 2005) SCORE 0.8 "
      "CONF 0.7 ORDER BY year DESC LIMIT 25");
  return queries;
}

INSTANTIATE_TEST_SUITE_P(Workload, StrategyEquivalenceTest,
                         ::testing::ValuesIn(EquivalenceQueries()));

}  // namespace
}  // namespace prefdb

// The preference-aware query cache (src/cache): plan/preference
// fingerprinting, the sharded LRU with its byte budget, version-based
// invalidation on catalog mutation, the SET CACHE pragma, and — the
// correctness contract — that warm (cached) executions are bit-identical
// to cold ones, counters included, for every strategy.

#include <memory>
#include <thread>
#include <vector>

#include "cache/fingerprint.h"
#include "cache/query_cache.h"
#include "common/fault_injection.h"
#include "exec/runner.h"
#include "expr/expr_builder.h"
#include "gtest/gtest.h"
#include "parser/parser.h"
#include "plan/plan.h"
#include "test_util.h"

namespace prefdb {
namespace {

using cache::CacheKey;
using cache::CachedResult;
using cache::FingerprintPlan;
using cache::PlanFingerprint;
using cache::QueryCache;
using testing_util::I;
using testing_util::MakeMovieCatalog;

// ---------------------------------------------------------------------------
// Fingerprinting.

class FingerprintTest : public ::testing::Test {
 protected:
  FingerprintTest() : catalog_(MakeMovieCatalog()) {}
  Catalog catalog_;
};

TEST_F(FingerprintTest, StableAcrossCalls) {
  PlanPtr plan = plan::Select(eb::Ge(eb::Col("year"), eb::Lit(int64_t{2005})),
                              plan::Scan("MOVIES"));
  auto a = FingerprintPlan(*plan, catalog_);
  auto b = FingerprintPlan(*plan, catalog_);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->cacheable);
  EXPECT_EQ(a->key, b->key);
}

TEST_F(FingerprintTest, SensitiveToPlanDetails) {
  PlanPtr base = plan::Select(eb::Ge(eb::Col("year"), eb::Lit(int64_t{2005})),
                              plan::Scan("MOVIES"));
  PlanPtr other_pred = plan::Select(
      eb::Ge(eb::Col("year"), eb::Lit(int64_t{2006})), plan::Scan("MOVIES"));
  PlanPtr other_table = plan::Select(
      eb::Ge(eb::Col("year"), eb::Lit(int64_t{2005})), plan::Scan("GENRES"));
  PlanPtr bare = plan::Scan("MOVIES");
  auto k_base = FingerprintPlan(*base, catalog_);
  auto k_pred = FingerprintPlan(*other_pred, catalog_);
  auto k_table = FingerprintPlan(*other_table, catalog_);
  auto k_bare = FingerprintPlan(*bare, catalog_);
  ASSERT_TRUE(k_base.ok() && k_pred.ok() && k_table.ok() && k_bare.ok());
  EXPECT_NE(k_base->key, k_pred->key);
  EXPECT_NE(k_base->key, k_table->key);
  EXPECT_NE(k_base->key, k_bare->key);
  // The seed (native-optimizer toggle) separates physical spaces.
  auto k_seeded = FingerprintPlan(*base, catalog_, /*seed=*/1);
  ASSERT_TRUE(k_seeded.ok());
  EXPECT_NE(k_base->key, k_seeded->key);
}

TEST_F(FingerprintTest, TableVersionInvalidates) {
  PlanPtr plan = plan::Scan("MOVIES");
  auto before = FingerprintPlan(*plan, catalog_);
  ASSERT_TRUE(before.ok());

  // Re-create MOVIES with identical contents: a fresh version stamp, so the
  // old fingerprint can never match again.
  auto table = catalog_.GetTable("MOVIES");
  ASSERT_TRUE(table.ok());
  Schema schema = (*table)->schema();
  std::vector<Tuple> rows = (*table)->relation().rows();
  catalog_.DropTable("MOVIES");
  auto rebuilt = Table::Create("MOVIES", schema, std::move(rows), {"m_id"});
  ASSERT_TRUE(rebuilt.ok());
  ASSERT_TRUE(catalog_.AddTable(std::move(*rebuilt)).ok());

  auto after = FingerprintPlan(*plan, catalog_);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(before->key, after->key);
}

TEST_F(FingerprintTest, TemporaryTablesAreNotCacheable) {
  auto table = catalog_.GetTable("MOVIES");
  ASSERT_TRUE(table.ok());
  auto temp = Table::Create("__tmp_probe", (*table)->schema(),
                            (*table)->relation().rows(), {"m_id"},
                            /*qualify_with_name=*/false);
  ASSERT_TRUE(temp.ok());
  (*temp)->MarkTemporary();
  ASSERT_TRUE(catalog_.AddTable(std::move(*temp)).ok());

  PlanPtr plan = plan::Scan("__tmp_probe");
  auto fp = FingerprintPlan(*plan, catalog_);
  ASSERT_TRUE(fp.ok());
  EXPECT_FALSE(fp->cacheable);
}

TEST_F(FingerprintTest, UnknownTableFails) {
  PlanPtr plan = plan::Scan("NO_SUCH_TABLE");
  EXPECT_FALSE(FingerprintPlan(*plan, catalog_).ok());
}

TEST(PreferenceHashTest, ContentHashIgnoresNameTracksContent) {
  auto mk = [](const char* name, int64_t year, double conf) {
    return Preference::Generic(
        name, "MOVIES", eb::Ge(eb::Col("year"), eb::Lit(year)),
        ScoringFunction::Constant(1.0), conf);
  };
  PreferencePtr a = mk("p1", 2005, 0.9);
  PreferencePtr renamed = mk("p2", 2005, 0.9);
  PreferencePtr edited = mk("p1", 2006, 0.9);
  PreferencePtr reweighted = mk("p1", 2005, 0.8);
  EXPECT_EQ(a->ContentHash(), renamed->ContentHash());
  EXPECT_NE(a->ContentHash(), edited->ContentHash());
  EXPECT_NE(a->ContentHash(), reweighted->ContentHash());
}

TEST(PreferenceHashTest, MembershipSpecIsHashed) {
  PreferencePtr plain = Preference::Generic(
      "p", "MOVIES", eb::True(), ScoringFunction::Constant(1.0), 0.9);
  PreferencePtr member = Preference::Membership(
      "p", "MOVIES", MembershipSpec{"AWARDS", "m_id", "m_id"}, eb::True(),
      ScoringFunction::Constant(1.0), 0.9);
  EXPECT_NE(plain->ContentHash(), member->ContentHash());
}

TEST_F(FingerprintTest, PreferNodeTracksPreferenceContent) {
  auto mk_plan = [](PreferencePtr pref) {
    return plan::Prefer(std::move(pref), plan::Scan("MOVIES"));
  };
  PlanPtr a = mk_plan(Preference::Generic(
      "p1", "MOVIES", eb::Ge(eb::Col("year"), eb::Lit(int64_t{2005})),
      ScoringFunction::Constant(1.0), 0.9));
  PlanPtr renamed = mk_plan(Preference::Generic(
      "p9", "MOVIES", eb::Ge(eb::Col("year"), eb::Lit(int64_t{2005})),
      ScoringFunction::Constant(1.0), 0.9));
  PlanPtr edited = mk_plan(Preference::Generic(
      "p1", "MOVIES", eb::Ge(eb::Col("year"), eb::Lit(int64_t{2006})),
      ScoringFunction::Constant(1.0), 0.9));
  auto k_a = FingerprintPlan(*a, catalog_);
  auto k_renamed = FingerprintPlan(*renamed, catalog_);
  auto k_edited = FingerprintPlan(*edited, catalog_);
  ASSERT_TRUE(k_a.ok() && k_renamed.ok() && k_edited.ok());
  EXPECT_EQ(k_a->key, k_renamed->key);
  EXPECT_NE(k_a->key, k_edited->key);
}

// ---------------------------------------------------------------------------
// The sharded LRU store.

// Keys with lo == 0 hash to `hi`, so hi = shard + 8*i pins them to a shard —
// which makes per-shard LRU order and budgets deterministic to test.
CacheKey ShardKey(size_t shard, uint64_t i) {
  return CacheKey{shard + 8 * i, 0};
}

std::shared_ptr<CachedResult> EntryOfBytes(size_t bytes) {
  auto entry = std::make_shared<CachedResult>();
  entry->bytes = bytes;
  // A nonzero recompute cost, so the admission policy (which rejects
  // trivially recomputable values) lets these synthetic entries in.
  entry->stats.rows_scanned = 10000;
  return entry;
}

TEST(QueryCacheTest, DisabledByDefault) {
  Engine engine{MakeMovieCatalog()};
  EXPECT_FALSE(engine.cache()->enabled());
}

TEST(QueryCacheTest, LruEvictionOrder) {
  QueryCache cache(nullptr, /*max_bytes=*/8 * 1000);  // 1000 bytes per shard.
  cache.set_enabled(true);
  CacheKey k1 = ShardKey(0, 1), k2 = ShardKey(0, 2), k3 = ShardKey(0, 3);
  cache.Insert(k1, EntryOfBytes(400));
  cache.Insert(k2, EntryOfBytes(400));
  // Touch k1 so k2 becomes the eviction victim.
  EXPECT_NE(cache.Lookup(k1), nullptr);
  cache.Insert(k3, EntryOfBytes(400));  // 1200 > 1000: evicts LRU = k2.
  EXPECT_NE(cache.Lookup(k1), nullptr);
  EXPECT_EQ(cache.Lookup(k2), nullptr);
  EXPECT_NE(cache.Lookup(k3), nullptr);
  QueryCache::Stats stats = cache.snapshot();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 800u);
}

TEST(QueryCacheTest, ByteBudgetRejectsOversizeAndShrinksOnLimit) {
  QueryCache cache(nullptr, /*max_bytes=*/8 * 1000);
  cache.set_enabled(true);
  // An entry larger than a whole shard budget is not stored at all.
  cache.Insert(ShardKey(0, 1), EntryOfBytes(5000));
  EXPECT_EQ(cache.Lookup(ShardKey(0, 1)), nullptr);
  EXPECT_EQ(cache.snapshot().entries, 0u);

  cache.Insert(ShardKey(0, 2), EntryOfBytes(400));
  cache.Insert(ShardKey(0, 3), EntryOfBytes(400));
  EXPECT_EQ(cache.snapshot().entries, 2u);
  // Shrinking the budget evicts immediately.
  cache.set_max_bytes(8 * 500);
  EXPECT_EQ(cache.snapshot().entries, 1u);
  // Clear drops everything.
  cache.Clear();
  EXPECT_EQ(cache.snapshot().entries, 0u);
  EXPECT_EQ(cache.snapshot().bytes, 0u);
}

TEST(QueryCacheTest, PinnedEntriesSurviveEviction) {
  QueryCache cache(nullptr, /*max_bytes=*/8 * 1000);
  cache.set_enabled(true);
  auto stored = EntryOfBytes(600);
  cache.Insert(ShardKey(0, 1), stored);
  // A reader holds the entry while it gets evicted by a newer insert.
  std::shared_ptr<const CachedResult> pinned = cache.Lookup(ShardKey(0, 1));
  ASSERT_NE(pinned, nullptr);
  cache.Insert(ShardKey(0, 2), EntryOfBytes(600));
  EXPECT_EQ(cache.Lookup(ShardKey(0, 1)), nullptr);
  // The pinned snapshot is still fully usable.
  EXPECT_EQ(pinned->bytes, 600u);
  EXPECT_EQ(pinned->rel.NumRows(), 0u);
}

TEST(QueryCacheTest, AdmissionPolicyRejectsOversizeAndTrivialEntries) {
  obs::MetricsRegistry metrics;
  QueryCache cache(&metrics, /*max_bytes=*/8 * 1000);  // 1000 bytes/shard.
  cache.set_enabled(true);

  // Oversize: bigger than a whole shard's budget slice.
  cache.Insert(ShardKey(0, 1), EntryOfBytes(5000));
  EXPECT_EQ(cache.Lookup(ShardKey(0, 1)), nullptr);
  EXPECT_EQ(cache.snapshot().admission_rejected, 1u);

  // Trivial recompute: the miss execution touched no rows, so a hit would
  // save nothing — not worth displacing useful entries.
  auto trivial = std::make_shared<CachedResult>();
  trivial->bytes = 100;
  cache.Insert(ShardKey(0, 2), trivial);
  EXPECT_EQ(cache.Lookup(ShardKey(0, 2)), nullptr);
  EXPECT_EQ(cache.snapshot().admission_rejected, 2u);
  EXPECT_EQ(cache.snapshot().insertions, 0u);

  // A normally-sized, non-trivial entry is admitted; materialized-only
  // work (e.g. a prefer subtree over an already-loaded relation) counts as
  // recompute cost too.
  auto useful = std::make_shared<CachedResult>();
  useful->bytes = 100;
  useful->stats.tuples_materialized = 42;
  cache.Insert(ShardKey(0, 3), useful);
  EXPECT_NE(cache.Lookup(ShardKey(0, 3)), nullptr);
  QueryCache::Stats stats = cache.snapshot();
  EXPECT_EQ(stats.admission_rejected, 2u);
  EXPECT_EQ(stats.insertions, 1u);

  // The registry counter mirrors the snapshot field, and ToString surfaces
  // the rejection count for SHOW CACHE-style diagnostics.
  EXPECT_EQ(metrics.counter("pref.cache.admission_rejected")->value(), 2u);
  EXPECT_NE(cache.ToString().find("admission_rejected=2"), std::string::npos);
}

TEST(QueryCacheTest, HitMissCounters) {
  QueryCache cache(nullptr);
  cache.set_enabled(true);
  CacheKey k = ShardKey(3, 7);
  EXPECT_EQ(cache.Lookup(k), nullptr);
  cache.Insert(k, EntryOfBytes(10));
  EXPECT_NE(cache.Lookup(k), nullptr);
  QueryCache::Stats stats = cache.snapshot();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

// ---------------------------------------------------------------------------
// SET CACHE pragma and engine integration.

const char* kPreferringQuery =
    "SELECT title, year FROM MOVIES "
    "PREFERRING (year >= 2005) SCORE recency(year, 2011) CONF 0.9 RANKED";

TEST(CachePragmaTest, OnOffClearLimit) {
  Session session(MakeMovieCatalog());
  EXPECT_FALSE(session.engine().cache()->enabled());

  auto on = session.Query("SET CACHE ON");
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  EXPECT_EQ(on->executed_plan, "SET CACHE ON");
  EXPECT_TRUE(session.engine().cache()->enabled());

  auto limit = session.Query("SET CACHE LIMIT 1048576");
  ASSERT_TRUE(limit.ok());
  EXPECT_EQ(session.engine().cache()->max_bytes(), 1048576u);

  // Populate, then CLEAR empties it.
  ASSERT_TRUE(session.Query(kPreferringQuery).ok());
  EXPECT_GT(session.engine().cache()->snapshot().entries, 0u);
  auto clear = session.Query("SET CACHE CLEAR");
  ASSERT_TRUE(clear.ok());
  EXPECT_EQ(session.engine().cache()->snapshot().entries, 0u);

  auto off = session.Query("SET CACHE OFF");
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(session.engine().cache()->enabled());

  EXPECT_FALSE(session.Query("SET CACHE SIDEWAYS").ok());
  EXPECT_FALSE(session.Query("SET CACHE ON EXTRA").ok());
}

TEST(CachePragmaTest, PerQueryOverride) {
  Session session(MakeMovieCatalog());
  QueryOptions cached;
  cached.cache = true;
  ASSERT_TRUE(session.Query(kPreferringQuery, cached).ok());
  EXPECT_GT(session.engine().cache()->snapshot().entries, 0u);
  // The engine-wide switch is restored afterwards.
  EXPECT_FALSE(session.engine().cache()->enabled());

  // And the reverse: override off while the session cache is on.
  ASSERT_TRUE(session.Query("SET CACHE ON").ok());
  QueryCache::Stats before = session.engine().cache()->snapshot();
  QueryOptions uncached;
  uncached.cache = false;
  ASSERT_TRUE(session.Query(kPreferringQuery, uncached).ok());
  QueryCache::Stats after = session.engine().cache()->snapshot();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_TRUE(session.engine().cache()->enabled());
}

// Warm repeats must be bit-identical to the cold run: same rows in the same
// order (exact Value equality, doubles included) and the same counters —
// the cache replays the miss execution's ExecStats delta on every hit.
TEST(CacheEquivalenceTest, WarmRepeatBitIdenticalForEveryStrategy) {
  const StrategyKind kStrategies[] = {
      StrategyKind::kFtP, StrategyKind::kBU, StrategyKind::kGBU,
      StrategyKind::kPlugInBasic, StrategyKind::kPlugInCombined};
  for (StrategyKind kind : kStrategies) {
    Session session(MakeMovieCatalog());
    ASSERT_TRUE(session.Query("SET CACHE ON").ok());
    QueryOptions options;
    options.strategy = kind;
    auto cold = session.Query(kPreferringQuery, options);
    ASSERT_TRUE(cold.ok()) << StrategyKindName(kind) << ": "
                           << cold.status().ToString();
    QueryCache::Stats cold_stats = session.engine().cache()->snapshot();
    auto warm = session.Query(kPreferringQuery, options);
    ASSERT_TRUE(warm.ok()) << StrategyKindName(kind);
    QueryCache::Stats warm_stats = session.engine().cache()->snapshot();

    EXPECT_EQ(warm->relation.schema(), cold->relation.schema())
        << StrategyKindName(kind);
    EXPECT_EQ(warm->relation.rows(), cold->relation.rows())
        << StrategyKindName(kind) << ": warm rows differ from cold";
    EXPECT_EQ(warm->stats.engine_queries, cold->stats.engine_queries)
        << StrategyKindName(kind);
    EXPECT_EQ(warm->stats.tuples_materialized, cold->stats.tuples_materialized)
        << StrategyKindName(kind);
    EXPECT_EQ(warm->stats.rows_scanned, cold->stats.rows_scanned)
        << StrategyKindName(kind);
    EXPECT_EQ(warm->stats.score_entries_written,
              cold->stats.score_entries_written)
        << StrategyKindName(kind);
    EXPECT_GT(warm_stats.hits, cold_stats.hits)
        << StrategyKindName(kind) << ": warm run produced no cache hit";
    EXPECT_EQ(warm_stats.insertions, cold_stats.insertions)
        << StrategyKindName(kind) << ": warm run should insert nothing new";
  }
}

// A query that trips the governor — or hits an injected fault on the very
// insert path — must never populate a shard: later warm runs may not reuse
// a result whose execution did not complete cleanly.
TEST(CacheEquivalenceTest, FailedQueriesAreNeverAdmitted) {
  Session session(MakeMovieCatalog());
  ASSERT_TRUE(session.Query("SET CACHE ON").ok());

  // Fault on the admission step itself: the delegated result exists but the
  // query fails before Insert(), so nothing may be cached.
  FaultInjection::Global().Arm("cache.insert");
  QueryCache::Stats before = session.engine().cache()->snapshot();
  auto faulted = session.Query(kPreferringQuery);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kInternal);
  EXPECT_EQ(session.engine().cache()->snapshot().insertions,
            before.insertions);
  FaultInjection::Global().Disarm();

  // Governor trip mid-query (1-byte budget): partial results are likewise
  // never admitted.
  QueryOptions capped;
  capped.memory_limit_bytes = 1;
  before = session.engine().cache()->snapshot();
  auto tripped = session.Query(kPreferringQuery, capped);
  ASSERT_FALSE(tripped.ok());
  EXPECT_EQ(tripped.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(session.engine().cache()->snapshot().insertions,
            before.insertions);

  // The cold slot is still genuinely cold: the next clean run recomputes
  // (a miss, new insertions) and matches a never-faulted session exactly.
  before = session.engine().cache()->snapshot();
  auto clean = session.Query(kPreferringQuery);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  QueryCache::Stats after = session.engine().cache()->snapshot();
  EXPECT_GT(after.insertions, before.insertions);
  Session fresh(MakeMovieCatalog());
  auto baseline = fresh.Query(kPreferringQuery);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(clean->relation.rows(), baseline->relation.rows());
}

// Prefer-under-set-operation: only BU and GBU evaluate these; GBU's region
// queries reference per-execution temp tables and must bypass the cache,
// while its prefer subtrees still hit.
TEST(CacheEquivalenceTest, SetOpWarmRepeatBitIdentical) {
  const char* kSetOpQuery =
      "SELECT title, year FROM MOVIES WHERE year >= 2004 "
      "PREFERRING (year >= 2005) SCORE recency(year, 2011) CONF 0.9 "
      "UNION "
      "SELECT title, year FROM MOVIES WHERE duration <= 120 "
      "PREFERRING (duration <= 120) SCORE 0.6 CONF 0.5 "
      "RANKED";
  for (StrategyKind kind : {StrategyKind::kBU, StrategyKind::kGBU}) {
    Session session(MakeMovieCatalog());
    ASSERT_TRUE(session.Query("SET CACHE ON").ok());
    QueryOptions options;
    options.strategy = kind;
    auto cold = session.Query(kSetOpQuery, options);
    ASSERT_TRUE(cold.ok()) << StrategyKindName(kind) << ": "
                           << cold.status().ToString();
    auto warm = session.Query(kSetOpQuery, options);
    ASSERT_TRUE(warm.ok()) << StrategyKindName(kind);
    EXPECT_EQ(warm->relation.rows(), cold->relation.rows())
        << StrategyKindName(kind);
    EXPECT_EQ(warm->stats.engine_queries, cold->stats.engine_queries)
        << StrategyKindName(kind);
    EXPECT_EQ(warm->stats.score_entries_written,
              cold->stats.score_entries_written)
        << StrategyKindName(kind);
    EXPECT_GT(session.engine().cache()->snapshot().hits, 0u)
        << StrategyKindName(kind);
  }
}

TEST(CacheEquivalenceTest, CatalogMutationInvalidates) {
  Session session(MakeMovieCatalog());
  ASSERT_TRUE(session.Query("SET CACHE ON").ok());
  auto before = session.Query(kPreferringQuery);
  ASSERT_TRUE(before.ok());
  size_t rows_before = before->relation.NumRows();
  ASSERT_GT(rows_before, 0u);

  // Drop one movie and re-create the table: the fresh version stamp makes
  // every cached fingerprint over MOVIES unmatchable.
  Catalog* catalog = session.engine().mutable_catalog();
  auto table = catalog->GetTable("MOVIES");
  ASSERT_TRUE(table.ok());
  Schema schema = (*table)->schema();
  std::vector<Tuple> rows = (*table)->relation().rows();
  rows.pop_back();
  catalog->DropTable("MOVIES");
  auto rebuilt = Table::Create("MOVIES", schema, std::move(rows), {"m_id"});
  ASSERT_TRUE(rebuilt.ok());
  ASSERT_TRUE(catalog->AddTable(std::move(*rebuilt)).ok());

  auto after = session.Query(kPreferringQuery);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->relation.NumRows(), rows_before - 1)
      << "stale cache entry served after catalog mutation";
}

// Editing one profile preference must invalidate only the cache entries
// that depend on it: the non-preference query part and the other
// preferences' rewrites keep hitting.
TEST(CacheEquivalenceTest, ProfileEditInvalidatesSelectively) {
  auto make_profile = [](int64_t year_cutoff) {
    Profile profile("alice");
    profile.Add(Preference::Generic(
        "recent", "MOVIES",
        eb::Ge(eb::Col("year"), eb::Lit(year_cutoff)),
        ScoringFunction::Constant(1.0), 0.9));
    profile.Add(Preference::Generic(
        "comedy", "GENRES",
        eb::Eq(eb::Col("genre"), eb::Lit("Comedy")),
        ScoringFunction::Constant(0.8), 0.7));
    return profile;
  };
  const char* kSql =
      "SELECT title FROM MOVIES JOIN GENRES ON MOVIES.m_id = GENRES.m_id";

  Session session(MakeMovieCatalog());
  ASSERT_TRUE(session.Query("SET CACHE ON").ok());
  QueryOptions options;
  options.strategy = StrategyKind::kPlugInBasic;

  Profile v1 = make_profile(2005);
  ASSERT_TRUE(session.QueryPersonalized(kSql, v1, options).ok());
  QueryCache::Stats cold = session.engine().cache()->snapshot();
  ASSERT_GT(cold.insertions, 1u) << "expected Q_NP plus per-preference "
                                    "rewrites in the cache";

  // Unchanged profile: everything hits.
  ASSERT_TRUE(session.QueryPersonalized(kSql, v1, options).ok());
  QueryCache::Stats warm = session.engine().cache()->snapshot();
  EXPECT_EQ(warm.misses, cold.misses);
  EXPECT_EQ(warm.hits - cold.hits, cold.insertions);

  // Edit the year preference only: its dependents miss, the rest hit.
  Profile v2 = make_profile(2006);
  ASSERT_TRUE(session.QueryPersonalized(kSql, v2, options).ok());
  QueryCache::Stats edited = session.engine().cache()->snapshot();
  uint64_t new_misses = edited.misses - warm.misses;
  uint64_t new_hits = edited.hits - warm.hits;
  EXPECT_GT(new_misses, 0u) << "edited preference still served from cache";
  EXPECT_GT(new_hits, 0u) << "independent entries were invalidated too";
  EXPECT_LT(new_misses, cold.insertions)
      << "profile edit invalidated every entry, not just dependents";
}

TEST(CacheEquivalenceTest, ExplainAnalyzeAnnotatesHitsAndMisses) {
  Session session(MakeMovieCatalog());
  ASSERT_TRUE(session.Query("SET CACHE ON").ok());
  std::string explain =
      std::string("EXPLAIN ANALYZE ") + kPreferringQuery;
  auto cold = session.Query(explain);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_NE(cold->explain_analyze.find("cache=miss"), std::string::npos)
      << cold->explain_analyze;
  auto warm = session.Query(explain);
  ASSERT_TRUE(warm.ok());
  EXPECT_NE(warm->explain_analyze.find("cache=hit"), std::string::npos)
      << warm->explain_analyze;
}

// Regression: the plug-in strategy's Q_NP execution span must be handed to
// ExecuteConcurrent, or the cache layer has nowhere to hang its annotation
// and the plug-in EXPLAIN ANALYZE silently loses cache=hit/miss.
TEST(CacheEquivalenceTest, PlugInExplainAnalyzeAnnotatesQnpSpan) {
  Session session(MakeMovieCatalog());
  ASSERT_TRUE(session.Query("SET CACHE ON").ok());
  QueryOptions options;
  options.strategy = StrategyKind::kPlugInBasic;
  std::string explain = std::string("EXPLAIN ANALYZE ") + kPreferringQuery;

  // The annotation must land on the Q_NP span itself, not just anywhere in
  // the report, so check the EngineQuery[Q_NP] line.
  auto qnp_line = [](const std::string& report) {
    size_t pos = report.find("EngineQuery[Q_NP]");
    if (pos == std::string::npos) return std::string();
    size_t start = report.rfind('\n', pos);
    start = start == std::string::npos ? 0 : start + 1;
    size_t end = report.find('\n', pos);
    return report.substr(start, end - start);
  };

  auto cold = session.Query(explain, options);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  std::string cold_line = qnp_line(cold->explain_analyze);
  ASSERT_FALSE(cold_line.empty()) << cold->explain_analyze;
  EXPECT_NE(cold_line.find("cache=miss"), std::string::npos) << cold_line;

  auto warm = session.Query(explain, options);
  ASSERT_TRUE(warm.ok());
  std::string warm_line = qnp_line(warm->explain_analyze);
  EXPECT_NE(warm_line.find("cache=hit"), std::string::npos) << warm_line;
}

TEST(CacheEquivalenceTest, MetricsRegistryExposesCacheCounters) {
  Session session(MakeMovieCatalog());
  ASSERT_TRUE(session.Query("SET CACHE ON").ok());
  ASSERT_TRUE(session.Query(kPreferringQuery).ok());
  ASSERT_TRUE(session.Query(kPreferringQuery).ok());
  obs::MetricsRegistry& metrics = session.engine().metrics();
  EXPECT_GT(metrics.counter("pref.cache.hits")->value(), 0u);
  EXPECT_GT(metrics.counter("pref.cache.misses")->value(), 0u);
}

// ---------------------------------------------------------------------------
// Concurrency: racing executions of the same and different plans against a
// shared engine, with the cache enabled. Results must match the serial
// answer, and every lookup must resolve to a hit or a miss (no lost
// updates, no torn entries). Run under TSan via the `parallel` ctest label.

TEST(CacheConcurrencyTest, ConcurrentHitsAndMissesAreSafe) {
  Engine engine{MakeMovieCatalog()};
  engine.cache()->set_enabled(true);

  auto parsed = ParseQuery(
      "SELECT title, year FROM MOVIES WHERE year >= 2004", engine.catalog());
  ASSERT_TRUE(parsed.ok());
  auto parsed2 = ParseQuery(
      "SELECT title, year FROM MOVIES WHERE year <= 2008", engine.catalog());
  ASSERT_TRUE(parsed2.ok());
  const PlanNode* plans[] = {parsed->plan.get(), parsed2->plan.get()};

  ExecStats serial_stats[2];
  StatusOr<Relation> serial[] = {
      engine.ExecuteConcurrent(*plans[0], &serial_stats[0]),
      engine.ExecuteConcurrent(*plans[1], &serial_stats[1])};
  ASSERT_TRUE(serial[0].ok() && serial[1].ok());
  engine.cache()->Clear();  // Drops entries; hit/miss counters are cumulative.
  QueryCache::Stats baseline = engine.cache()->snapshot();

  constexpr int kThreads = 8;
  constexpr int kRounds = 16;
  std::vector<Status> failures(kThreads, Status::OK());
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const int which = (t + round) % 2;
        ExecStats stats;
        StatusOr<Relation> result =
            engine.ExecuteConcurrent(*plans[which], &stats);
        if (!result.ok()) {
          failures[t] = result.status();
          return;
        }
        if (result->rows() != serial[which]->rows()) {
          failures[t] = Status::Internal("rows diverged from serial answer");
          return;
        }
        if (stats.engine_queries != serial_stats[which].engine_queries) {
          failures[t] = Status::Internal("stats replay diverged");
          return;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].ok()) << "thread " << t << ": "
                                  << failures[t].ToString();
  }
  QueryCache::Stats stats = engine.cache()->snapshot();
  EXPECT_EQ((stats.hits - baseline.hits) + (stats.misses - baseline.misses),
            static_cast<uint64_t>(kThreads * kRounds));
  EXPECT_GT(stats.hits, baseline.hits);
}

TEST(CacheConcurrencyTest, ConcurrentInsertEvictChurnIsSafe) {
  // A budget small enough that concurrent inserts continuously evict.
  QueryCache cache(nullptr, /*max_bytes=*/8 * 256);
  cache.set_enabled(true);
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      for (uint64_t i = 0; i < 200; ++i) {
        CacheKey key{(t * 1000 + i) % 37, i % 5};
        cache.Insert(key, EntryOfBytes(64));
        std::shared_ptr<const CachedResult> entry = cache.Lookup(key);
        if (entry != nullptr && entry->bytes != 64) {
          ADD_FAILURE() << "torn entry";
          return;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  QueryCache::Stats stats = cache.snapshot();
  EXPECT_LE(stats.bytes, 8 * 256u);
}

}  // namespace
}  // namespace prefdb

// Telemetry endpoint and structured query log: the embedded HTTP server is
// scraped over a real socket (Prometheus grammar + counter parity with the
// JSON export), the socketless Handle() routing is pinned, the query-log
// ring wraps and tolerates concurrent writers (TSan covers this via the
// `parallel` ctest label), and SET SLOWLOG stamps slow queries with their
// span tree.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "datagen/imdb_gen.h"
#include "exec/runner.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/telemetry_server.h"

namespace prefdb {
namespace {

// ---------------------------------------------------------------------------
// A minimal HTTP/1.0-style client: one request, read to EOF.

struct HttpReply {
  int status = 0;
  std::string body;
};

HttpReply Fetch(int port, const std::string& request_line) {
  HttpReply reply;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return reply;
  }
  std::string request = request_line + "\r\nHost: localhost\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  // "HTTP/1.1 200 OK\r\n...\r\n\r\n<body>"
  if (response.compare(0, 9, "HTTP/1.1 ") == 0) {
    reply.status = std::atoi(response.c_str() + 9);
  }
  size_t body_at = response.find("\r\n\r\n");
  if (body_at != std::string::npos) reply.body = response.substr(body_at + 4);
  return reply;
}

// Parses Prometheus sample lines "name value" into a map, checking the
// grammar as it goes: every line is a `# TYPE` comment or a sample whose
// name starts with [a-zA-Z_:] and continues with [a-zA-Z0-9_:] (optionally
// followed by a {label} block before the value).
std::map<std::string, std::string> ParsePrometheus(const std::string& body) {
  std::map<std::string, std::string> samples;
  size_t start = 0;
  while (start < body.size()) {
    size_t end = body.find('\n', start);
    if (end == std::string::npos) end = body.size();
    std::string line = body.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line.compare(0, 7, "# TYPE ") == 0) continue;
    EXPECT_FALSE(line[0] == '#') << "unexpected comment: " << line;
    size_t i = 0;
    auto name_start = [](char c) {
      return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
             c == ':';
    };
    auto name_char = [&name_start](char c) {
      return name_start(c) || std::isdigit(static_cast<unsigned char>(c));
    };
    EXPECT_TRUE(name_start(line[0])) << "bad metric name: " << line;
    while (i < line.size() && name_char(line[i])) ++i;
    std::string name = line.substr(0, i);
    if (i < line.size() && line[i] == '{') {
      size_t close = line.find('}', i);
      EXPECT_NE(close, std::string::npos) << "unclosed labels: " << line;
      if (close == std::string::npos) continue;
      name = line.substr(0, close + 1);
      i = close + 1;
    }
    EXPECT_TRUE(i < line.size() && line[i] == ' ')
        << "sample without value: " << line;
    if (i < line.size() && line[i] == ' ') samples[name] = line.substr(i + 1);
  }
  return samples;
}

// ---------------------------------------------------------------------------
// Socketless routing.

TEST(TelemetryServerTest, HandleRoutes) {
  obs::MetricsRegistry metrics;
  metrics.counter("pref.cache.hits")->Increment(7);
  obs::QueryLog log;
  obs::TelemetryServer server(
      {.metrics = &metrics, .query_log = &log});

  auto health = server.Handle("/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  auto prom = server.Handle("/metrics");
  EXPECT_EQ(prom.status, 200);
  EXPECT_NE(prom.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(prom.body.find("pref_cache_hits 7"), std::string::npos)
      << prom.body;

  auto json = server.Handle("/metrics.json");
  EXPECT_EQ(json.status, 200);
  EXPECT_EQ(json.content_type, "application/json");
  EXPECT_EQ(json.body, metrics.ToJson());

  auto queries = server.Handle("/queries");
  EXPECT_EQ(queries.status, 200);
  EXPECT_EQ(queries.body, log.ToJson());

  EXPECT_EQ(server.Handle("/nope").status, 404);
}

TEST(TelemetryServerTest, QueriesIs404WithoutALog) {
  obs::MetricsRegistry metrics;
  obs::TelemetryServer server({.metrics = &metrics});
  EXPECT_EQ(server.Handle("/queries").status, 404);
}

TEST(TelemetryServerTest, StartRequiresMetrics) {
  obs::TelemetryServer server({});
  EXPECT_FALSE(server.Start().ok());
  EXPECT_FALSE(server.running());
}

// ---------------------------------------------------------------------------
// Real-socket scrapes.

TEST(TelemetryServerTest, ScrapesOverARealSocket) {
  obs::MetricsRegistry metrics;
  metrics.counter("pref.cache.hits")->Increment(3);
  metrics.counter("pref.cache.misses")->Increment(11);
  metrics.SetGauge("pref.pool.queue_depth", 4.0);
  metrics.histogram("session.query_micros", {100.0, 1000.0})->Record(42.0);
  obs::QueryLog log;
  obs::QueryRecord record;
  record.strategy = "FtP";
  record.millis = 1.5;
  log.Add(std::move(record));

  obs::TelemetryServer server(
      {.port = 0, .metrics = &metrics, .query_log = &log});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  HttpReply health = Fetch(server.port(), "GET /healthz HTTP/1.1");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  HttpReply prom = Fetch(server.port(), "GET /metrics HTTP/1.1");
  ASSERT_EQ(prom.status, 200);
  std::map<std::string, std::string> samples = ParsePrometheus(prom.body);
  // Counter parity: the socket-served Prometheus values match the live
  // registry (and hence ToJson, which reads the same atomics).
  EXPECT_EQ(samples["pref_cache_hits"], "3");
  EXPECT_EQ(samples["pref_cache_misses"], "11");
  EXPECT_EQ(samples["pref_pool_queue_depth"], "4");
  EXPECT_EQ(samples["session_query_micros_count"], "1");
  EXPECT_EQ(samples["session_query_micros_bucket{le=\"100\"}"], "1");
  EXPECT_EQ(samples["session_query_micros_bucket{le=\"+Inf\"}"], "1");
  std::string json = Fetch(server.port(), "GET /metrics.json HTTP/1.1").body;
  EXPECT_NE(json.find("\"pref.cache.hits\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pref.cache.misses\": 11"), std::string::npos) << json;

  HttpReply queries = Fetch(server.port(), "GET /queries HTTP/1.1");
  EXPECT_EQ(queries.status, 200);
  EXPECT_NE(queries.body.find("\"strategy\": \"FtP\""), std::string::npos)
      << queries.body;

  EXPECT_EQ(Fetch(server.port(), "GET /nothing HTTP/1.1").status, 404);
  EXPECT_EQ(Fetch(server.port(), "POST /metrics HTTP/1.1").status, 405);

  server.Stop();
  EXPECT_FALSE(server.running());
  // Stop is idempotent and Start works again after it.
  server.Stop();
}

TEST(TelemetryServerTest, ConcurrentScrapesSeeConsistentExpositions) {
  obs::MetricsRegistry metrics;
  metrics.AddRefreshHook(
      [&metrics] { metrics.SetGauge("live.depth", 1.0); });
  obs::QueryLog log;
  obs::TelemetryServer server(
      {.port = 0, .worker_threads = 3, .metrics = &metrics, .query_log = &log});
  ASSERT_TRUE(server.Start().ok());

  // Writers mutate counters and the query log while scrapers hit every
  // endpoint over real sockets — the TSan run of this test is the
  // concurrent-scrape-safety gate.
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&metrics, &log] {
      for (int i = 0; i < 200; ++i) {
        metrics.counter("pref.cache.hits")->Increment();
        metrics.SetGauge("pref.pool.queue_depth", static_cast<double>(i));
        obs::QueryRecord record;
        record.strategy = "FtP";
        record.millis = 0.1;
        log.Add(std::move(record));
      }
    });
  }
  for (int s = 0; s < 3; ++s) {
    threads.emplace_back([&server, s] {
      const char* paths[] = {"/metrics", "/metrics.json", "/queries"};
      for (int i = 0; i < 20; ++i) {
        HttpReply reply = Fetch(
            server.port(),
            std::string("GET ") + paths[(s + i) % 3] + " HTTP/1.1");
        EXPECT_EQ(reply.status, 200);
        EXPECT_FALSE(reply.body.empty());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  server.Stop();
  EXPECT_EQ(metrics.counter("pref.cache.hits")->value(), 400u);
  EXPECT_EQ(log.total_added(), 400u);
}

// ---------------------------------------------------------------------------
// Query-log ring buffer.

TEST(QueryLogTest, RingWrapsOldestFirst) {
  obs::QueryLog log(4);
  EXPECT_EQ(log.capacity(), 4u);
  for (uint64_t i = 0; i < 6; ++i) {
    obs::QueryRecord record;
    record.sql_hash = i;
    log.Add(std::move(record));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total_added(), 6u);
  EXPECT_EQ(log.dropped(), 2u);
  std::vector<obs::QueryRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].sql_hash, i + 2) << "not oldest-first at " << i;
    EXPECT_EQ(records[i].sequence, i + 2);
  }
  std::string json = log.ToJson();
  EXPECT_NE(json.find("\"dropped\": 2"), std::string::npos) << json;
}

TEST(QueryLogTest, ConcurrentWritersLoseNothing) {
  obs::QueryLog log(64);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 250;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&log, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        obs::QueryRecord record;
        record.sql_hash = static_cast<uint64_t>(w) * 1000 + i;
        log.Add(std::move(record));
      }
    });
  }
  // Concurrent readers: snapshots must always be internally consistent.
  threads.emplace_back([&log] {
    for (int i = 0; i < 50; ++i) {
      std::vector<obs::QueryRecord> records = log.Snapshot();
      for (size_t j = 1; j < records.size(); ++j) {
        EXPECT_LT(records[j - 1].sequence, records[j].sequence);
      }
      (void)log.ToJson();
    }
  });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(log.total_added(), static_cast<uint64_t>(kWriters * kPerWriter));
  EXPECT_EQ(log.size(), 64u);
  std::vector<obs::QueryRecord> records = log.Snapshot();
  // The survivors are the last 64 sequences, in order.
  ASSERT_EQ(records.size(), 64u);
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].sequence, records[i - 1].sequence + 1);
  }
  EXPECT_EQ(records.back().sequence,
            static_cast<uint64_t>(kWriters * kPerWriter) - 1);
}

// ---------------------------------------------------------------------------
// SET SLOWLOG end to end.

TEST(SlowlogTest, StampsSlowQueriesWithTraces) {
  ImdbOptions gen;
  gen.scale = 0.0008;
  gen.seed = 7;
  auto catalog = GenerateImdb(gen);
  ASSERT_TRUE(catalog.ok());
  Session session(std::move(*catalog));
  const std::string sql =
      "SELECT title FROM MOVIES "
      "PREFERRING (year >= 2005) SCORE recency(year, 2011) CONF 0.9 RANKED";

  // Threshold 0: everything is slow, every record carries its span tree.
  auto armed = session.Query("SET SLOWLOG 0");
  ASSERT_TRUE(armed.ok()) << armed.status().ToString();
  EXPECT_EQ(armed->executed_plan, "SET SLOWLOG 0");
  auto r1 = session.Query(sql);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  {
    std::vector<obs::QueryRecord> records =
        session.engine().query_log().Snapshot();
    ASSERT_FALSE(records.empty());
    const obs::QueryRecord& last = records.back();
    EXPECT_FALSE(last.failed);
    EXPECT_GT(last.rows_out, 0u);
    EXPECT_NE(last.sql_hash, 0u);
    EXPECT_NE(last.slow_trace.find("Query"), std::string::npos)
        << last.slow_trace;
    EXPECT_NE(last.slow_trace.find("time="), std::string::npos)
        << last.slow_trace;
  }

  // Disarmed: no more slow traces, but records still land.
  auto off = session.Query("SET SLOWLOG OFF");
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  EXPECT_EQ(off->executed_plan, "SET SLOWLOG OFF");
  auto r2 = session.Query(sql);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  {
    std::vector<obs::QueryRecord> records =
        session.engine().query_log().Snapshot();
    const obs::QueryRecord& last = records.back();
    EXPECT_TRUE(last.slow_trace.empty());
    EXPECT_FALSE(last.failed);
  }

  // Failures are recorded too, with the failure message.
  auto bad = session.Query(
      "SELECT title, year FROM MOVIES WHERE d_id <= 20 "
      "PREFERRING (year >= 2005) SCORE recency(year, 2011) CONF 0.9 "
      "UNION "
      "SELECT title, year FROM MOVIES WHERE year >= 2005 "
      "PREFERRING (duration <= 120) SCORE 0.6 CONF 0.5 RANKED",
      [] {
        QueryOptions options;
        options.strategy = StrategyKind::kFtP;
        return options;
      }());
  ASSERT_FALSE(bad.ok());
  std::vector<obs::QueryRecord> records =
      session.engine().query_log().Snapshot();
  const obs::QueryRecord& last = records.back();
  EXPECT_TRUE(last.failed);
  EXPECT_FALSE(last.failure_message.empty());

  // Bad pragma values are rejected at parse time.
  EXPECT_FALSE(session.Query("SET SLOWLOG -5").ok());
  EXPECT_FALSE(session.Query("SET SLOWLOG fast").ok());
}

}  // namespace
}  // namespace prefdb

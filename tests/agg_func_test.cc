#include "prefs/agg_func.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace prefdb {
namespace {

// ---------------------------------------------------------------------------
// Exact semantics of the paper's two aggregate functions.

TEST(FSumTest, WeightedAverageAndSummedConfidence) {
  FSum f;
  // Paper F_S: score = Σ c_k s_k / Σ c_k, conf = Σ c_k.
  ScoreConf r = f.Combine(ScoreConf::Known(1.0, 0.8), ScoreConf::Known(0.5, 0.2));
  EXPECT_NEAR(r.score(), (0.8 * 1.0 + 0.2 * 0.5) / 1.0, 1e-12);
  EXPECT_NEAR(r.conf(), 1.0, 1e-12);
}

TEST(FSumTest, IdentityPassThrough) {
  FSum f;
  ScoreConf x = ScoreConf::Known(0.7, 0.4);
  EXPECT_EQ(f.Combine(ScoreConf::Identity(), x), x);
  EXPECT_EQ(f.Combine(x, ScoreConf::Identity()), x);
  EXPECT_TRUE(f.Combine(ScoreConf::Identity(), ScoreConf::Identity()).IsDefault());
}

TEST(FSumTest, ZeroConfidenceInputsCombineToIdentity) {
  // Regression for the F_S division by the total confidence: a "known
  // score backed by zero confidence" is unconstructible (Known normalizes
  // it to the identity), and two zero-evidence inputs must combine to the
  // identity rather than to 0/0 = NaN.
  EXPECT_TRUE(ScoreConf::Known(0.7, 0.0).IsDefault());
  EXPECT_TRUE(ScoreConf::Known(0.7, -1.0).IsDefault());
  FSum f;
  ScoreConf r =
      f.Combine(ScoreConf::Known(0.3, 0.0), ScoreConf::Known(0.9, 0.0));
  EXPECT_TRUE(r.IsDefault());
  EXPECT_FALSE(std::isnan(r.score()));
  EXPECT_FALSE(std::isnan(r.conf()));
}

TEST(FSumTest, CombineStaysFiniteOnDenormalConfidences) {
  // The weighted average must stay finite even when confidences are
  // denormal — far below any epsilon a caller might compare against — and
  // when one operand carries essentially all the weight.
  FSum f;
  const double tiny = std::numeric_limits<double>::denorm_min();
  std::vector<ScoreConf> pairs = {
      ScoreConf::Identity(),        ScoreConf::Known(0.0, tiny),
      ScoreConf::Known(1.0, tiny),  ScoreConf::Known(0.5, 1e-308),
      ScoreConf::Known(0.7, 0.0),   ScoreConf::Known(0.2, 1.0)};
  for (const ScoreConf& a : pairs) {
    for (const ScoreConf& b : pairs) {
      ScoreConf r = f.Combine(a, b);
      if (r.IsDefault()) continue;
      EXPECT_TRUE(std::isfinite(r.score()))
          << "F_S(" << a.ToString() << ", " << b.ToString() << ")";
      EXPECT_TRUE(std::isfinite(r.conf()))
          << "F_S(" << a.ToString() << ", " << b.ToString() << ")";
    }
  }
}

TEST(FMaxConfTest, HighestConfidenceWins) {
  FMaxConf f;
  ScoreConf low = ScoreConf::Known(1.0, 0.3);
  ScoreConf high = ScoreConf::Known(0.2, 0.9);
  EXPECT_EQ(f.Combine(low, high), high);
  EXPECT_EQ(f.Combine(high, low), high);
}

TEST(FMaxConfTest, TieBreaksTowardHigherScore) {
  FMaxConf f;
  ScoreConf a = ScoreConf::Known(0.9, 0.5);
  ScoreConf b = ScoreConf::Known(0.4, 0.5);
  EXPECT_EQ(f.Combine(a, b), a);
  EXPECT_EQ(f.Combine(b, a), a);
}

TEST(FMaxScoreTest, HighestScoreWins) {
  FMaxScore f;
  ScoreConf a = ScoreConf::Known(0.9, 0.1);
  ScoreConf b = ScoreConf::Known(0.5, 0.9);
  EXPECT_EQ(f.Combine(a, b), a);
}

TEST(FNoisyOrTest, ProbabilisticUnion) {
  FNoisyOr f;
  ScoreConf r = f.Combine(ScoreConf::Known(0.5, 0.5), ScoreConf::Known(0.5, 0.4));
  EXPECT_NEAR(r.score(), 0.75, 1e-12);
  EXPECT_NEAR(r.conf(), 0.9, 1e-12);
}

TEST(RegistryTest, LookupByName) {
  EXPECT_TRUE(GetAggregateFunction("wsum").ok());
  EXPECT_TRUE(GetAggregateFunction("MAXCONF").ok());  // Case-insensitive.
  EXPECT_TRUE(GetAggregateFunction("maxscore").ok());
  EXPECT_TRUE(GetAggregateFunction("noisyor").ok());
  EXPECT_FALSE(GetAggregateFunction("median").ok());
  EXPECT_EQ(AllAggregateFunctions().size(), 4u);
}

TEST(CombineAllTest, FoldsLeftToRight) {
  FSum f;
  std::vector<ScoreConf> pairs = {ScoreConf::Known(1.0, 1.0),
                                  ScoreConf::Known(0.0, 1.0),
                                  ScoreConf::Known(0.5, 2.0)};
  ScoreConf r = f.CombineAll(pairs);
  EXPECT_NEAR(r.score(), (1.0 + 0.0 + 1.0) / 4.0, 1e-12);
  EXPECT_NEAR(r.conf(), 4.0, 1e-12);
  EXPECT_TRUE(f.CombineAll({}).IsDefault());
}

TEST(CombineCountedTest, CountsAccumulateUnderEveryAggregate) {
  for (const AggregateFunction* agg : AllAggregateFunctions()) {
    ScoreConf a = ScoreConf::Known(0.8, 0.9);          // count 1.
    ScoreConf b = ScoreConf::Known(0.2, 0.4).WithCount(2);
    ScoreConf combined = CombineCounted(*agg, a, b);
    EXPECT_EQ(combined.count(), 3u) << agg->name();
    // Identity operands contribute zero.
    EXPECT_EQ(CombineCounted(*agg, ScoreConf::Identity(), a).count(), 1u)
        << agg->name();
    EXPECT_TRUE(
        CombineCounted(*agg, ScoreConf::Identity(), ScoreConf::Identity())
            .IsDefault())
        << agg->name();
  }
}

TEST(CombineCountedTest, CombineAllCounts) {
  FSum f;
  ScoreConf r = f.CombineAll({ScoreConf::Known(1.0, 1.0),
                              ScoreConf::Known(0.5, 0.5),
                              ScoreConf::Identity()});
  EXPECT_EQ(r.count(), 2u);
}

// ---------------------------------------------------------------------------
// Property sweep: every registered aggregate function must satisfy the
// Def. 3 contract — associativity, commutativity, and ⟨⊥,0⟩ as identity —
// on randomized inputs (including identities and boundary values). These
// are the properties the optimizer's rules 3-5 rely on.

class AggFunctionLaws : public ::testing::TestWithParam<const AggregateFunction*> {
 protected:
  static std::vector<ScoreConf> RandomPairs(size_t n, uint64_t seed) {
    Rng rng(seed);
    std::vector<ScoreConf> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      switch (rng.Uniform(0, 5)) {
        case 0:
          out.push_back(ScoreConf::Identity());
          break;
        case 1:
          out.push_back(ScoreConf::Known(0.0, rng.UniformReal(0.01, 1.0)));
          break;
        case 2:
          out.push_back(ScoreConf::Known(1.0, rng.UniformReal(0.01, 1.0)));
          break;
        default:
          out.push_back(ScoreConf::Known(rng.UniformReal(0.0, 1.0),
                                         rng.UniformReal(0.01, 3.0)));
      }
    }
    return out;
  }
};

TEST_P(AggFunctionLaws, IdentityElement) {
  const AggregateFunction& f = *GetParam();
  for (const ScoreConf& x : RandomPairs(200, 17)) {
    EXPECT_TRUE(f.Combine(ScoreConf::Identity(), x).ApproxEquals(x, 1e-12))
        << f.name() << " with " << x.ToString();
    EXPECT_TRUE(f.Combine(x, ScoreConf::Identity()).ApproxEquals(x, 1e-12))
        << f.name() << " with " << x.ToString();
  }
}

TEST_P(AggFunctionLaws, Commutativity) {
  const AggregateFunction& f = *GetParam();
  std::vector<ScoreConf> pairs = RandomPairs(400, 29);
  for (size_t i = 0; i + 1 < pairs.size(); i += 2) {
    ScoreConf ab = f.Combine(pairs[i], pairs[i + 1]);
    ScoreConf ba = f.Combine(pairs[i + 1], pairs[i]);
    EXPECT_TRUE(ab.ApproxEquals(ba, 1e-9))
        << f.name() << ": F(" << pairs[i].ToString() << ", "
        << pairs[i + 1].ToString() << ")";
  }
}

TEST_P(AggFunctionLaws, Associativity) {
  const AggregateFunction& f = *GetParam();
  std::vector<ScoreConf> pairs = RandomPairs(600, 31);
  for (size_t i = 0; i + 2 < pairs.size(); i += 3) {
    const ScoreConf& a = pairs[i];
    const ScoreConf& b = pairs[i + 1];
    const ScoreConf& c = pairs[i + 2];
    ScoreConf left = f.Combine(f.Combine(a, b), c);
    ScoreConf right = f.Combine(a, f.Combine(b, c));
    EXPECT_TRUE(left.ApproxEquals(right, 1e-9))
        << f.name() << ": (" << a.ToString() << " " << b.ToString() << ") "
        << c.ToString();
  }
}

TEST_P(AggFunctionLaws, FoldOrderIndependence) {
  // Stronger form used by the execution strategies: folding a multiset of
  // pairs in any order yields the same result.
  const AggregateFunction& f = *GetParam();
  std::vector<ScoreConf> pairs = RandomPairs(8, 41);
  ScoreConf forward = f.CombineAll(pairs);
  std::vector<ScoreConf> reversed(pairs.rbegin(), pairs.rend());
  ScoreConf backward = f.CombineAll(reversed);
  EXPECT_TRUE(forward.ApproxEquals(backward, 1e-9)) << f.name();
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregates, AggFunctionLaws,
    ::testing::ValuesIn(AllAggregateFunctions()),
    [](const ::testing::TestParamInfo<const AggregateFunction*>& info) {
      return std::string(info.param->name());
    });

}  // namespace
}  // namespace prefdb

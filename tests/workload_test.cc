#include "workload/workload.h"

#include "datagen/dblp_gen.h"
#include "datagen/imdb_gen.h"
#include "exec/runner.h"
#include "gtest/gtest.h"

namespace prefdb {
namespace {

class ImdbWorkloadTest : public ::testing::Test {
 protected:
  static Session& session() {
    static Session* instance = [] {
      ImdbOptions options;
      options.scale = 0.001;
      auto catalog = GenerateImdb(options);
      EXPECT_TRUE(catalog.ok());
      return new Session(std::move(*catalog));
    }();
    return *instance;
  }
};

TEST_F(ImdbWorkloadTest, AllQueriesParseAndRun) {
  for (const WorkloadQuery& q : ImdbWorkload()) {
    auto result = session().Query(q.sql);
    ASSERT_TRUE(result.ok()) << q.name << ": " << result.status().ToString();
    EXPECT_FALSE(q.description.empty());
  }
}

TEST_F(ImdbWorkloadTest, WorkloadMatchesTableIIShape) {
  std::vector<WorkloadQuery> workload = ImdbWorkload();
  ASSERT_EQ(workload.size(), 3u);
  EXPECT_EQ(workload[0].name, "IMDB-1");
  // IMDB-1: 2 relations, 2 preferences.
  auto parsed1 = ParseQuery(workload[0].sql, session().engine().catalog());
  ASSERT_TRUE(parsed1.ok());
  EXPECT_EQ(parsed1->plan->CountKind(PlanKind::kScan), 2u);
  EXPECT_EQ(parsed1->preferences.size(), 2u);
  // IMDB-2: 4 relations, 3 preferences.
  auto parsed2 = ParseQuery(workload[1].sql, session().engine().catalog());
  ASSERT_TRUE(parsed2.ok());
  EXPECT_EQ(parsed2->plan->CountKind(PlanKind::kScan), 4u);
  EXPECT_EQ(parsed2->preferences.size(), 3u);
  // IMDB-3: 5 relations, 4 preferences (one membership).
  auto parsed3 = ParseQuery(workload[2].sql, session().engine().catalog());
  ASSERT_TRUE(parsed3.ok());
  EXPECT_EQ(parsed3->plan->CountKind(PlanKind::kScan), 5u);
  EXPECT_EQ(parsed3->preferences.size(), 4u);
  EXPECT_NE(parsed3->preferences[3]->membership(), nullptr);
}

TEST_F(ImdbWorkloadTest, PreferenceSweepScalesLambda) {
  for (int n : {1, 3, 8}) {
    std::string sql = ImdbPreferenceSweep(n);
    auto parsed = ParseQuery(sql, session().engine().catalog());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << sql;
    EXPECT_EQ(parsed->preferences.size(), static_cast<size_t>(n));
    auto result = session().Query(sql);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  // Out-of-range requests clamp.
  auto lo = ParseQuery(ImdbPreferenceSweep(0), session().engine().catalog());
  ASSERT_TRUE(lo.ok());
  EXPECT_EQ(lo->preferences.size(), 1u);
  auto hi = ParseQuery(ImdbPreferenceSweep(99), session().engine().catalog());
  ASSERT_TRUE(hi.ok());
  EXPECT_EQ(hi->preferences.size(), 8u);
}

TEST_F(ImdbWorkloadTest, SelectivitySweepMatchesFraction) {
  size_t n_movies =
      (*session().engine().catalog().GetTable("MOVIES"))->NumRows();
  std::string sql =
      ImdbSelectivitySweep(0.25, static_cast<long long>(n_movies));
  auto result = session().Query(sql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Count scored rows: should be about a quarter of the (joined) result.
  size_t scored = 0;
  auto conf_idx = result->relation.schema().FindColumn("conf");
  ASSERT_TRUE(conf_idx.ok());
  for (const Tuple& row : result->relation.rows()) {
    if (row[*conf_idx].NumericValue() > 0) ++scored;
  }
  EXPECT_GT(scored, 0u);
  EXPECT_LT(scored, result->relation.NumRows());
}

TEST_F(ImdbWorkloadTest, RelationsSweepJoinsProgressively) {
  for (int r = 1; r <= 5; ++r) {
    std::string sql = ImdbRelationsSweep(r);
    auto parsed = ParseQuery(sql, session().engine().catalog());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << sql;
    EXPECT_EQ(parsed->plan->CountKind(PlanKind::kScan), static_cast<size_t>(r));
    auto result = session().Query(sql);
    ASSERT_TRUE(result.ok()) << "r=" << r << ": " << result.status().ToString();
  }
}

TEST(DblpWorkloadTest, AllQueriesParseAndRun) {
  DblpOptions options;
  options.scale = 0.001;
  auto catalog = GenerateDblp(options);
  ASSERT_TRUE(catalog.ok());
  Session session(std::move(*catalog));
  std::vector<WorkloadQuery> workload = DblpWorkload();
  ASSERT_EQ(workload.size(), 3u);
  for (const WorkloadQuery& q : workload) {
    auto result = session.Query(q.sql);
    ASSERT_TRUE(result.ok()) << q.name << ": " << result.status().ToString();
  }
}

}  // namespace
}  // namespace prefdb

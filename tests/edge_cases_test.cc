// Edge-case battery: empty relations, NULL-heavy data, single-row tables,
// degenerate filters and non-ASCII strings, run through the full pipeline
// under every strategy. These inputs are where materializing executors
// usually hide off-by-ones.

#include "exec/runner.h"
#include "gtest/gtest.h"
#include "storage/csv_loader.h"
#include "test_util.h"

namespace prefdb {
namespace {

using testing_util::I;
using testing_util::N;
using testing_util::S;

Catalog EdgeCatalog() {
  Catalog catalog;
  // EMPTY: a table with no rows at all.
  EXPECT_TRUE(catalog
                  .CreateTable("EMPTY",
                               Schema({{"", "id", ValueType::kInt},
                                       {"", "x", ValueType::kInt}}),
                               {}, {"id"})
                  .ok());
  // SINGLE: exactly one row.
  EXPECT_TRUE(catalog
                  .CreateTable("SINGLE",
                               Schema({{"", "id", ValueType::kInt},
                                       {"", "x", ValueType::kInt}}),
                               {{I(1), I(42)}}, {"id"})
                  .ok());
  // NULLY: NULLs in data columns and join keys.
  EXPECT_TRUE(catalog
                  .CreateTable("NULLY",
                               Schema({{"", "id", ValueType::kInt},
                                       {"", "ref", ValueType::kInt},
                                       {"", "v", ValueType::kDouble}}),
                               {{I(1), I(1), N()},
                                {I(2), N(), testing_util::D(0.5)},
                                {I(3), I(99), testing_util::D(1.5)}},
                               {"id"})
                  .ok());
  // UNI: non-ASCII strings.
  EXPECT_TRUE(catalog
                  .CreateTable("UNI",
                               Schema({{"", "id", ValueType::kInt},
                                       {"", "name", ValueType::kString}}),
                               {{I(1), S("café")},
                                {I(2), S("Ωmega")},
                                {I(3), S("naïve—dash")}},
                               {"id"})
                  .ok());
  return catalog;
}

class EdgeCasesTest : public ::testing::Test {
 protected:
  EdgeCasesTest() : session_(EdgeCatalog()) {}

  QueryResult RunAll(const std::string& sql) {
    QueryResult last;
    for (StrategyKind kind :
         {StrategyKind::kFtP, StrategyKind::kBU, StrategyKind::kGBU,
          StrategyKind::kPlugInBasic, StrategyKind::kPlugInCombined}) {
      QueryOptions options;
      options.strategy = kind;
      auto result = session_.Query(sql, options);
      EXPECT_TRUE(result.ok())
          << StrategyKindName(kind) << ": " << result.status().ToString()
          << "\n" << sql;
      if (result.ok()) {
        if (last.relation.schema().empty()) {
          last = std::move(*result);
        } else {
          EXPECT_EQ(result->relation.NumRows(), last.relation.NumRows())
              << StrategyKindName(kind);
        }
      }
    }
    return last;
  }

  Session session_;
};

TEST_F(EdgeCasesTest, EmptyTableWithPreferences) {
  QueryResult result = RunAll(
      "SELECT id FROM EMPTY PREFERRING (x > 0) SCORE 1.0 CONF 1 RANKED");
  EXPECT_EQ(result.relation.NumRows(), 0u);
}

TEST_F(EdgeCasesTest, EmptyJoinSide) {
  QueryResult result = RunAll(
      "SELECT SINGLE.id FROM SINGLE JOIN EMPTY ON SINGLE.id = EMPTY.id "
      "PREFERRING (SINGLE.x >= 0) SCORE 1.0 CONF 1 RANKED");
  EXPECT_EQ(result.relation.NumRows(), 0u);
}

TEST_F(EdgeCasesTest, TopKOnEmptyResult) {
  QueryResult result = RunAll(
      "SELECT id FROM SINGLE WHERE x > 100 "
      "PREFERRING (x > 0) SCORE 1.0 CONF 1 TOP 5 BY SCORE");
  EXPECT_EQ(result.relation.NumRows(), 0u);
}

TEST_F(EdgeCasesTest, SingleRowAllOperators) {
  QueryResult result = RunAll(
      "SELECT id, x FROM SINGLE "
      "PREFERRING (x = 42) SCORE 1.0 CONF 0.9 "
      "NOT DOMINATED TOP 1 BY CONF");
  ASSERT_EQ(result.relation.NumRows(), 1u);
  EXPECT_NEAR(result.relation.rows()[0][3].NumericValue(), 0.9, 1e-12);
}

TEST_F(EdgeCasesTest, NullJoinKeysNeverMatch) {
  // SQL semantics: NULL = anything is not true, so row 2 joins nothing.
  QueryResult result = RunAll(
      "SELECT NULLY.id FROM NULLY "
      "JOIN SINGLE ON NULLY.ref = SINGLE.id "
      "PREFERRING (v >= 0) SCORE 1.0 CONF 1 RANKED");
  EXPECT_EQ(result.relation.NumRows(), 1u);  // Only ref=1 matches.
}

TEST_F(EdgeCasesTest, NullScoringAttributeStaysUnscored) {
  QueryResult result = RunAll(
      "SELECT id, v FROM NULLY PREFERRING (true) SCORE v CONF 1 RANKED");
  ASSERT_EQ(result.relation.NumRows(), 3u);
  // Ranked by score desc: 1.5, 0.5, then the NULL-scored row last.
  EXPECT_EQ(result.relation.rows()[0][0], I(3));
  EXPECT_EQ(result.relation.rows()[1][0], I(2));
  EXPECT_TRUE(result.relation.rows()[2][2].is_null());  // score ⊥.
}

TEST_F(EdgeCasesTest, NullComparisonIsNotTruthy) {
  // v > 0 is NULL for row 1 — excluded by WHERE, unaffected by PREFERRING.
  QueryResult where_result = RunAll(
      "SELECT id FROM NULLY WHERE v > 0 "
      "PREFERRING (true) SCORE 1.0 CONF 1 RANKED");
  EXPECT_EQ(where_result.relation.NumRows(), 2u);
  QueryResult pref_result = RunAll(
      "SELECT id FROM NULLY PREFERRING (v > 0) SCORE 1.0 CONF 1 RANKED");
  EXPECT_EQ(pref_result.relation.NumRows(), 3u);  // Soft: nothing dropped.
}

TEST_F(EdgeCasesTest, UnicodeStringsRoundTrip) {
  QueryResult result = RunAll(
      "SELECT id, name FROM UNI WHERE name = 'café' "
      "PREFERRING (name LIKE '%af%') SCORE 1.0 CONF 1 RANKED");
  ASSERT_EQ(result.relation.NumRows(), 1u);
  EXPECT_EQ(result.relation.rows()[0][1], S("café"));
}

TEST_F(EdgeCasesTest, UnicodeSurvivesCsvRoundTrip) {
  Relation rel = (*session_.engine().catalog().GetTable("UNI"))->relation();
  std::string csv = RelationToCsv(rel);
  Catalog catalog;
  Schema schema({{"", "id", ValueType::kInt}, {"", "name", ValueType::kString}});
  ASSERT_TRUE(LoadCsvString(&catalog, "UNI2", schema, csv, {"id"}).ok());
  testing_util::ExpectSameRows((*catalog.GetTable("UNI2"))->relation(), rel);
}

TEST_F(EdgeCasesTest, ZeroConfidencePreferenceIsInert) {
  QueryResult result = RunAll(
      "SELECT id FROM SINGLE PREFERRING (true) SCORE 1.0 CONF 0 RANKED");
  ASSERT_EQ(result.relation.NumRows(), 1u);
  EXPECT_TRUE(result.relation.rows()[0][1].is_null());  // Still ⟨⊥, 0⟩.
}

TEST_F(EdgeCasesTest, SelfJoinWithAliases) {
  QueryResult result = RunAll(
      "SELECT A.id, B.id FROM NULLY AS A JOIN NULLY AS B ON A.id = B.ref "
      "PREFERRING (A.v >= 0) SCORE 1.0 CONF 0.5 RANKED");
  EXPECT_EQ(result.relation.NumRows(), 1u);  // (1, 1) via ref=1.
}

TEST_F(EdgeCasesTest, LimitZero) {
  QueryResult result = RunAll(
      "SELECT id FROM SINGLE PREFERRING (true) SCORE 1 CONF 1 LIMIT 0");
  EXPECT_EQ(result.relation.NumRows(), 0u);
}

}  // namespace
}  // namespace prefdb
